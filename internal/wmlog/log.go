package wmlog

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"time"
)

// Log file framing. Every record is
//
//	u32 frameLen | u8 type | payload | u32 crc
//
// with frameLen = 1 + len(payload) and crc = CRC-32 (IEEE) over the
// type byte and payload. The file opens with a fixed-size header:
//
//	magic "OPS5WLG1" | u32 version | 32-byte program hash | u32 crc
//
// The CRC plus the length prefix make a torn tail — a crash mid-write —
// detectable: the reader stops at the first frame that is short or
// fails its checksum and reports the clean prefix length, which the
// recovery path truncates to before appending again.

const (
	logMagic   = "OPS5WLG1"
	logVersion = 1
	// HeaderSize is the byte length of the log header: magic, version,
	// program hash, header CRC.
	HeaderSize = len(logMagic) + 4 + 32 + 4

	// maxFrame bounds a single record frame, protecting the reader from
	// a corrupt length prefix: a make record is a few hundred bytes, a
	// program record is one production's source.
	maxFrame = 16 << 20
)

// ErrLogCorrupt reports an unusable log header (wrong magic, version or
// header checksum) — as opposed to a torn tail, which is recoverable.
var ErrLogCorrupt = errors.New("wmlog: corrupt log header")

// SyncPolicy selects when appended records are forced to stable
// storage.
type SyncPolicy int

const (
	// SyncNone flushes the user-space buffer at commit points but never
	// fsyncs; durability is best-effort (OS crash loses the page cache).
	SyncNone SyncPolicy = iota
	// SyncCommit fsyncs at every Commit — once per request batch, the
	// server's durability default.
	SyncCommit
	// SyncAlways fsyncs after every record.
	SyncAlways
)

// ParseSyncPolicy maps the daemon's -durability flag values.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "", "none":
		return SyncNone, nil
	case "commit", "batch":
		return SyncCommit, nil
	case "always":
		return SyncAlways, nil
	default:
		return 0, fmt.Errorf("wmlog: unknown durability %q (want none, commit or always)", s)
	}
}

// WriterStats counts a log writer's I/O, for /metrics.
type WriterStats struct {
	Records int64 // records appended
	Bytes   int64 // bytes appended (frames, header excluded)
	Commits int64 // Commit calls
	Fsyncs  int64 // fsync calls issued
	FsyncUs int64 // wall-clock inside fsync, µs
}

// Sub subtracts o field-wise — the server folds per-session deltas.
func (s *WriterStats) Sub(o *WriterStats) {
	s.Records -= o.Records
	s.Bytes -= o.Bytes
	s.Commits -= o.Commits
	s.Fsyncs -= o.Fsyncs
	s.FsyncUs -= o.FsyncUs
}

// Writer appends framed records to a session's delta log.
type Writer struct {
	f       *os.File
	bw      *bufio.Writer
	policy  SyncPolicy
	off     int64 // file offset after the last buffered record
	scratch []byte
	stats   WriterStats
	closed  bool
}

// writeHeader emits the fixed header onto w.
func writeHeader(w io.Writer, progHash [32]byte) error {
	var b []byte
	b = append(b, logMagic...)
	b = binary.LittleEndian.AppendUint32(b, logVersion)
	b = append(b, progHash[:]...)
	crc := crc32.ChecksumIEEE(b[len(logMagic):])
	b = binary.LittleEndian.AppendUint32(b, crc)
	_, err := w.Write(b)
	return err
}

// readHeader validates the fixed header and returns the program hash.
func readHeader(r io.Reader) (progHash [32]byte, err error) {
	b := make([]byte, HeaderSize)
	if _, err := io.ReadFull(r, b); err != nil {
		return progHash, fmt.Errorf("%w: %v", ErrLogCorrupt, err)
	}
	if string(b[:len(logMagic)]) != logMagic {
		return progHash, fmt.Errorf("%w: bad magic", ErrLogCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[len(logMagic):]); v != logVersion {
		return progHash, fmt.Errorf("%w: version %d (want %d)", ErrLogCorrupt, v, logVersion)
	}
	body := b[len(logMagic) : HeaderSize-4]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(b[HeaderSize-4:]) {
		return progHash, fmt.Errorf("%w: header checksum mismatch", ErrLogCorrupt)
	}
	copy(progHash[:], b[len(logMagic)+4:])
	return progHash, nil
}

// Create opens (or creates) the delta log at path for appending. A new
// or empty file gets a fresh header; an existing file has its header
// validated against progHash and is truncated to cleanLen — the clean
// prefix a prior ReadAll reported — before appending resumes.
func Create(path string, progHash [32]byte, policy SyncPolicy, cleanLen int64) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{f: f, policy: policy}
	if st.Size() < int64(HeaderSize) {
		// New (or hopelessly short) log: start from a fresh header.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(0, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		if err := writeHeader(f, progHash); err != nil {
			f.Close()
			return nil, err
		}
		w.off = int64(HeaderSize)
	} else {
		got, err := readHeader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		if got != progHash {
			f.Close()
			return nil, fmt.Errorf("wmlog: log %s belongs to a different program", path)
		}
		end := st.Size()
		if cleanLen >= int64(HeaderSize) && cleanLen <= end {
			end = cleanLen
		}
		if err := f.Truncate(end); err != nil {
			f.Close()
			return nil, err
		}
		if _, err := f.Seek(end, io.SeekStart); err != nil {
			f.Close()
			return nil, err
		}
		w.off = end
	}
	w.bw = bufio.NewWriterSize(f, 64<<10)
	return w, nil
}

// Append frames and buffers one record. Visibility and durability
// follow the writer's sync policy; call Commit at batch boundaries.
func (w *Writer) Append(rec *Record) error {
	if w.closed {
		return errors.New("wmlog: append on closed writer")
	}
	b := w.scratch[:0]
	b = append(b, 0, 0, 0, 0) // frame length placeholder
	b = append(b, byte(rec.Type))
	b = rec.appendPayload(b)
	body := b[4:]
	binary.LittleEndian.PutUint32(b[:4], uint32(len(body)))
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(body))
	w.scratch = b[:0]
	if _, err := w.bw.Write(b); err != nil {
		return err
	}
	w.off += int64(len(b))
	w.stats.Records++
	w.stats.Bytes += int64(len(b))
	if w.policy == SyncAlways {
		return w.sync()
	}
	return nil
}

// Commit makes every appended record visible in the file, fsyncing
// under SyncCommit and SyncAlways.
func (w *Writer) Commit() error {
	if w.closed {
		return errors.New("wmlog: commit on closed writer")
	}
	w.stats.Commits++
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if w.policy == SyncNone {
		return nil
	}
	return w.sync()
}

func (w *Writer) sync() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	t0 := time.Now()
	err := w.f.Sync()
	w.stats.Fsyncs++
	w.stats.FsyncUs += time.Since(t0).Microseconds()
	return err
}

// Size reports the file offset after the last appended record — the
// covering offset a snapshot taken now should carry.
func (w *Writer) Size() int64 { return w.off }

// Stats returns the accumulated I/O counters.
func (w *Writer) Stats() WriterStats { return w.stats }

// Truncate discards every record, resetting the log to header-only.
// The caller snapshots first; a crash between the snapshot rename and
// this truncate is benign because the snapshot's LogOffset skips the
// surviving records.
func (w *Writer) Truncate() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Truncate(int64(HeaderSize)); err != nil {
		return err
	}
	if _, err := w.f.Seek(int64(HeaderSize), io.SeekStart); err != nil {
		return err
	}
	w.off = int64(HeaderSize)
	w.bw.Reset(w.f)
	if w.policy != SyncNone {
		return w.sync()
	}
	return nil
}

// Close flushes, optionally fsyncs, and releases the file handle. Safe
// to call twice.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	flushErr := w.bw.Flush()
	var syncErr error
	if w.policy != SyncNone && flushErr == nil {
		syncErr = w.f.Sync()
	}
	closeErr := w.f.Close()
	if flushErr != nil {
		return flushErr
	}
	if syncErr != nil {
		return syncErr
	}
	return closeErr
}

// Closed reports whether the writer has released its file handle.
func (w *Writer) Closed() bool { return w.closed }

// ReadResult is a decoded log.
type ReadResult struct {
	ProgHash [32]byte
	Records  []*Record
	// CleanLen is the byte length of the longest valid prefix. Torn is
	// true when the file continued past it with a short or corrupt
	// frame — the expected shape after a crash mid-append — in which
	// case the tail [CleanLen, EOF) was dropped.
	CleanLen int64
	Torn     bool
}

// ReadAll decodes the log at path from the byte offset `from` (0 or
// anything below HeaderSize means "all records"; a snapshot passes its
// covering LogOffset). A missing file is an error; a torn tail is not —
// it is reported via Torn/CleanLen and the records before it decode
// normally.
func ReadAll(path string, from int64) (*ReadResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < HeaderSize {
		return nil, fmt.Errorf("%w: %d bytes, want at least %d", ErrLogCorrupt, len(data), HeaderSize)
	}
	res := &ReadResult{}
	if res.ProgHash, err = readHeader(newByteReader(data[:HeaderSize])); err != nil {
		return nil, err
	}
	off := int64(HeaderSize)
	if from > off {
		if from > int64(len(data)) {
			// The snapshot covers past EOF: the log was truncated after
			// the snapshot was taken; nothing to replay.
			res.CleanLen = int64(len(data))
			return res, nil
		}
		off = from
	}
	res.CleanLen = off
	for off < int64(len(data)) {
		rest := data[off:]
		if len(rest) < 4 {
			res.Torn = true
			break
		}
		frameLen := binary.LittleEndian.Uint32(rest[:4])
		if frameLen < 1 || frameLen > maxFrame || int64(len(rest)) < int64(4+frameLen+4) {
			res.Torn = true
			break
		}
		body := rest[4 : 4+frameLen]
		crc := binary.LittleEndian.Uint32(rest[4+frameLen : 4+frameLen+4])
		if crc32.ChecksumIEEE(body) != crc {
			res.Torn = true
			break
		}
		rec, err := decodeRecord(RecType(body[0]), body[1:])
		if err != nil {
			// A frame that passes its CRC but fails structural decode is
			// not a torn write; refuse to guess.
			return nil, fmt.Errorf("wmlog: record at offset %d: %w", off, err)
		}
		res.Records = append(res.Records, rec)
		off += int64(4 + frameLen + 4)
		res.CleanLen = off
	}
	return res, nil
}

// newByteReader avoids importing bytes just for a reader.
type byteReader struct {
	b   []byte
	off int
}

func newByteReader(b []byte) *byteReader { return &byteReader{b: b} }

func (r *byteReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}
