package wmlog

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshot is a session's settled state at a drained point: the live
// working memory with exact time tags, the refraction state (which
// still-live instantiations have fired), the time-tag counter and the
// halt flag, pinned to a program by hash. LogOffset is the delta-log
// byte offset the snapshot covers: recovery restores the snapshot and
// replays only records past it, which also makes the
// snapshot-then-truncate compaction crash-safe in either order.
//
// The same encoding serves as the shared settled state of a template
// session: forks start from the snapshot and diverge through their own
// delta logs, and the template's snapshot hash pins its immutability.
type Snapshot struct {
	// Format is the payload's own version stamp, written by Encode and
	// checked by DecodeSnapshot. The container (magic + snapVersion)
	// versions the framing; Format versions the gob payload layout, so
	// a drift in this struct's field semantics surfaces as a clear
	// "snapshot format version X, this binary reads Y" error on restore
	// or migration import instead of a silently-misdecoded state or an
	// opaque gob failure. Bump snapFormat whenever a field's meaning,
	// type or encoding changes.
	Format    int
	ProgHash  [32]byte
	NextTag   int
	Halted    bool
	LogOffset int64
	Wmes      []TaggedWME
	Fired     []FireKey
	// Pending is the unconsumed (accept) input queue at the snapshot
	// point, so a session suspended awaiting input survives compaction
	// and recovery with its buffered values intact. Gob tolerates the
	// field's absence, so pre-existing snapshots decode as an empty queue.
	Pending []FieldVal
}

// TaggedWME is one working-memory element with its original time tag.
type TaggedWME struct {
	Tag    int
	Fields []FieldVal
}

// FireKey names a fired instantiation: rule plus token time tags in
// token order — exactly the identity the conflict set hashes.
type FireKey struct {
	Rule string
	Tags []int
}

const (
	snapMagic   = "OPS5WSN1"
	snapVersion = 1
	// snapFormat stamps the gob payload layout (see Snapshot.Format).
	snapFormat = 2
)

// ErrSnapshotVersion reports a snapshot written by a different payload
// format — a binary-skew situation (old snapshot under a new daemon, or
// a migration between daemons of different builds) that must fail
// loudly instead of half-decoding.
var ErrSnapshotVersion = errors.New("wmlog: snapshot format mismatch")

// ErrSnapshotCorrupt reports an undecodable snapshot file.
var ErrSnapshotCorrupt = errors.New("wmlog: corrupt snapshot")

// Encode serializes the snapshot: magic, version, u32 payload length,
// gob payload, CRC-32 over the payload. The encoding is deterministic
// for a given state (slices are ordered by the caller: WMEs by tag,
// fired keys by rule then tags), so Hash doubles as a state identity.
func (s *Snapshot) Encode() ([]byte, error) {
	s.Format = snapFormat
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(s); err != nil {
		return nil, err
	}
	var b []byte
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint32(b, snapVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(payload.Len()))
	b = append(b, payload.Bytes()...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload.Bytes()))
	return b, nil
}

// DecodeSnapshot parses an encoded snapshot.
func DecodeSnapshot(b []byte) (*Snapshot, error) {
	head := len(snapMagic) + 8
	if len(b) < head+4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrSnapshotCorrupt, len(b))
	}
	if string(b[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := binary.LittleEndian.Uint32(b[len(snapMagic):]); v != snapVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrSnapshotCorrupt, v, snapVersion)
	}
	n := int(binary.LittleEndian.Uint32(b[len(snapMagic)+4:]))
	if len(b) != head+n+4 {
		return nil, fmt.Errorf("%w: payload length %d in %d-byte file", ErrSnapshotCorrupt, n, len(b))
	}
	payload := b[head : head+n]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(b[head+n:]) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	var s Snapshot
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&s); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSnapshotCorrupt, err)
	}
	if s.Format != snapFormat {
		return nil, fmt.Errorf("%w: snapshot format version %d, this binary reads %d — "+
			"the snapshot was written by a different build (re-snapshot with the writing build, or upgrade in place)",
			ErrSnapshotVersion, s.Format, snapFormat)
	}
	return &s, nil
}

// Hash is the snapshot's content identity: SHA-256 of its canonical
// encoding with the covering offset zeroed (two snapshots of identical
// session state hash identically wherever their logs stand).
func (s *Snapshot) Hash() ([32]byte, error) {
	c := *s
	c.LogOffset = 0
	b, err := c.Encode()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}

// WriteSnapshot atomically replaces the snapshot at path: write to a
// temp file in the same directory, fsync, rename over.
func WriteSnapshot(path string, s *Snapshot) (int, error) {
	b, err := s.Encode()
	if err != nil {
		return 0, err
	}
	return len(b), writeFileAtomic(path, b)
}

// WriteSnapshotBytes atomically installs pre-encoded snapshot bytes —
// the template-fork path, which shares one encoding across every fork.
func WriteSnapshotBytes(path string, b []byte) error {
	return writeFileAtomic(path, b)
}

func writeFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".snap-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return nil
}

// ReadSnapshot loads the snapshot at path; (nil, nil) when none exists.
func ReadSnapshot(path string) (*Snapshot, error) {
	b, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	return DecodeSnapshot(b)
}
