package wmlog

import (
	"crypto/sha256"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/symbols"
	"repro/internal/wm"
)

func testRecords() []*Record {
	return []*Record{
		{Type: RecMake, Tag: 1, Fields: []FieldVal{
			{Kind: wm.KindSym, Str: "acct"},
			{Kind: wm.KindInt, Num: -42},
			{Kind: wm.KindFloat, F: 3.25},
			{Kind: wm.KindNil},
		}},
		{Type: RecRemove, Tag: 1},
		{Type: RecFire, Rule: "apply-txn", Tags: []int{7, 3}},
		{Type: RecHalt},
		{Type: RecProgram, Src: "(p extra (acct) --> (halt))"},
		{Type: RecMake, Tag: 2, Fields: []FieldVal{{Kind: wm.KindSym, Str: "acct"}}},
	}
}

func writeTestLog(t *testing.T, path string, hash [32]byte, recs []*Record) {
	t.Helper()
	w, err := Create(path, hash, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLogRoundTrip appends every record type and reads them back
// byte-exact.
func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.log")
	hash := sha256.Sum256([]byte("prog"))
	recs := testRecords()
	writeTestLog(t, path, hash, recs)

	res, err := ReadAll(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Torn {
		t.Fatal("clean log reported torn")
	}
	if res.ProgHash != hash {
		t.Fatal("program hash mismatch")
	}
	if len(res.Records) != len(recs) {
		t.Fatalf("read %d records, want %d", len(res.Records), len(recs))
	}
	for i, got := range res.Records {
		if !reflect.DeepEqual(got, recs[i]) {
			t.Errorf("record %d: got %+v want %+v", i, got, recs[i])
		}
	}

	// Reopen for append and extend; the reader sees old + new.
	w, err := Create(path, hash, SyncCommit, res.CleanLen)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Record{Type: RecRemove, Tag: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Records != 1 || st.Fsyncs == 0 {
		t.Errorf("writer stats after commit: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err = ReadAll(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(recs)+1 {
		t.Fatalf("after reopen: %d records, want %d", len(res.Records), len(recs)+1)
	}
}

// TestLogTornTail corrupts the final frame in several ways and checks
// the reader drops exactly the tail, keeping every complete record.
func TestLogTornTail(t *testing.T) {
	hash := sha256.Sum256([]byte("prog"))
	recs := testRecords()
	for _, mode := range []string{"short-frame", "bad-crc", "partial-length"} {
		t.Run(mode, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "delta.log")
			writeTestLog(t, path, hash, recs)
			full, err := ReadAll(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case "short-frame":
				data = data[:len(data)-3] // cut into the last record's CRC
			case "bad-crc":
				data[len(data)-1] ^= 0xff
			case "partial-length":
				data = append(data, 0x09, 0x00) // 2 bytes of a next frame
			}
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			res, err := ReadAll(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Torn {
				t.Fatal("corrupted tail not reported torn")
			}
			wantRecs := len(recs)
			if mode != "partial-length" {
				wantRecs-- // the final record itself was damaged
			}
			if len(res.Records) != wantRecs {
				t.Fatalf("kept %d records, want %d", len(res.Records), wantRecs)
			}
			// Recovery reopens at CleanLen and appends; the log is whole
			// again.
			w, err := Create(path, hash, SyncNone, res.CleanLen)
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Append(&Record{Type: RecHalt}); err != nil {
				t.Fatal(err)
			}
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
			res2, err := ReadAll(path, 0)
			if err != nil {
				t.Fatal(err)
			}
			if res2.Torn || len(res2.Records) != wantRecs+1 {
				t.Fatalf("after repair: torn=%v records=%d want %d", res2.Torn, len(res2.Records), wantRecs+1)
			}
			_ = full
		})
	}
}

// TestLogProgramMismatch rejects appending to a log owned by another
// program.
func TestLogProgramMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.log")
	writeTestLog(t, path, sha256.Sum256([]byte("a")), nil)
	if _, err := Create(path, sha256.Sum256([]byte("b")), SyncNone, 0); err == nil {
		t.Fatal("expected program-hash mismatch error")
	}
}

// TestSnapshotRoundTrip exercises encode/decode, the content hash and
// the covering-offset semantics of ReadAll.
func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snapshot.snap")
	s := &Snapshot{
		ProgHash:  sha256.Sum256([]byte("prog")),
		NextTag:   7,
		Halted:    true,
		LogOffset: 123,
		Wmes: []TaggedWME{
			{Tag: 2, Fields: []FieldVal{{Kind: wm.KindSym, Str: "acct"}, {Kind: wm.KindInt, Num: 9}}},
			{Tag: 5, Fields: []FieldVal{{Kind: wm.KindSym, Str: "txn"}}},
		},
		Fired: []FireKey{{Rule: "apply", Tags: []int{5, 2}}},
	}
	if _, err := WriteSnapshot(path, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("snapshot round trip: got %+v want %+v", got, s)
	}
	h1, err := s.Hash()
	if err != nil {
		t.Fatal(err)
	}
	moved := *s
	moved.LogOffset = 9999
	h2, err := moved.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatal("hash must ignore the covering offset")
	}
	diverged := *s
	diverged.NextTag++
	h3, err := diverged.Hash()
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h3 {
		t.Fatal("hash must change with state")
	}
	// Absent snapshot reads as nil, nil.
	if sn, err := ReadSnapshot(filepath.Join(dir, "none.snap")); sn != nil || err != nil {
		t.Fatalf("missing snapshot: %v, %v", sn, err)
	}
	// Corrupt snapshot is rejected.
	b, _ := os.ReadFile(path)
	b[len(b)-1] ^= 0xff
	os.WriteFile(path, b, 0o644)
	if _, err := ReadSnapshot(path); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

// TestReadAllFromOffset replays only the records past a covering
// offset, including the covers-past-EOF case after compaction.
func TestReadAllFromOffset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.log")
	hash := sha256.Sum256([]byte("prog"))
	w, err := Create(path, hash, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(&Record{Type: RecRemove, Tag: 1}); err != nil {
		t.Fatal(err)
	}
	mid := w.Size()
	if err := w.Append(&Record{Type: RecRemove, Tag: 2}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ReadAll(path, mid)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Tag != 2 {
		t.Fatalf("offset read: %+v", res.Records)
	}
	// Snapshot covering past EOF (log truncated after snapshot).
	res, err = ReadAll(path, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Torn {
		t.Fatalf("past-EOF read: %d records torn=%v", len(res.Records), res.Torn)
	}
}

// TestWriterTruncate compacts the log to header-only and appends fresh
// records.
func TestWriterTruncate(t *testing.T) {
	path := filepath.Join(t.TempDir(), "delta.log")
	hash := sha256.Sum256([]byte("prog"))
	w, err := Create(path, hash, SyncNone, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := w.Append(&Record{Type: RecRemove, Tag: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Truncate(); err != nil {
		t.Fatal(err)
	}
	if w.Size() != int64(HeaderSize) {
		t.Fatalf("size after truncate: %d", w.Size())
	}
	if err := w.Append(&Record{Type: RecRemove, Tag: 99}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	res, err := ReadAll(path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 1 || res.Records[0].Tag != 99 {
		t.Fatalf("after truncate: %+v", res.Records)
	}
}

// TestStoreOpenErrors wants clear errors, not panics, for unusable data
// directories.
func TestStoreOpenErrors(t *testing.T) {
	if _, err := Open(""); err == nil {
		t.Fatal("empty path accepted")
	}
	// A file where the directory should be.
	f := filepath.Join(t.TempDir(), "blocked")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(f); err == nil {
		t.Fatal("file-as-data-dir accepted")
	}
	// An unwritable directory (skipped for root, who writes anywhere).
	if os.Getuid() != 0 && runtime.GOOS != "windows" {
		ro := filepath.Join(t.TempDir(), "ro")
		if err := os.Mkdir(ro, 0o555); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(filepath.Join(ro, "data")); err == nil {
			t.Fatal("unwritable data dir accepted")
		}
	}
}

// TestStoreLayout exercises entry creation, meta round trip, listing
// and removal.
func TestStoreLayout(t *testing.T) {
	st, err := Open(filepath.Join(t.TempDir(), "data"))
	if err != nil {
		t.Fatal(err)
	}
	dir, err := st.EntryDir(KindSession, "s-000001")
	if err != nil {
		t.Fatal(err)
	}
	m := &Meta{Backend: "parallel", Procs: 4, Queues: 2, Locks: "mrsw", CSShards: 8, Template: "t-000001"}
	if err := WriteMeta(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMeta(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, m) {
		t.Fatalf("meta round trip: %+v want %+v", got, m)
	}
	if _, err := st.EntryDir(KindSession, "s-000002"); err != nil {
		t.Fatal(err)
	}
	ids, err := st.List(KindSession)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ids, []string{"s-000001", "s-000002"}) {
		t.Fatalf("list: %v", ids)
	}
	if err := st.Remove(KindSession, "s-000001"); err != nil {
		t.Fatal(err)
	}
	ids, _ = st.List(KindSession)
	if !reflect.DeepEqual(ids, []string{"s-000002"}) {
		t.Fatalf("list after remove: %v", ids)
	}
}

// TestValueCodec re-interns symbols across independent tables.
func TestValueCodec(t *testing.T) {
	tab1 := symbols.NewTable()
	vals := []wm.Value{
		wm.Sym(tab1.Intern("hello")),
		wm.Int(-7),
		wm.Float(2.5),
		wm.Nil,
	}
	enc := EncodeFields(vals, tab1)
	tab2 := symbols.NewTable()
	tab2.Intern("unrelated") // skew the ID space
	dec := DecodeFields(enc, tab2)
	if tab2.Name(dec[0].Sym) != "hello" {
		t.Fatalf("symbol did not survive re-interning: %v", dec[0])
	}
	for i := 1; i < len(vals); i++ {
		if !dec[i].Equal(vals[i]) {
			t.Errorf("value %d: %v != %v", i, dec[i], vals[i])
		}
	}
}
