package wmlog

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Store is the daemon's durability root: one directory per persisted
// session or template.
//
//	<dir>/sessions/<id>/program.ops5   OPS5 source the session runs
//	<dir>/sessions/<id>/meta.json      backend configuration (Meta)
//	<dir>/sessions/<id>/delta.log      framed WM delta log
//	<dir>/sessions/<id>/snapshot.snap  latest snapshot, if any
//	<dir>/templates/<id>/...           same layout, log-less
type Store struct {
	dir string
}

// Kind selects the sessions or templates branch of a store.
type Kind string

// Store branches.
const (
	KindSession  Kind = "sessions"
	KindTemplate Kind = "templates"
)

// Meta is the per-session configuration persisted alongside the log so
// recovery rebuilds the same backend. The fields mirror the server's
// SessionConfig minus the program source, which gets its own file.
type Meta struct {
	Backend   string `json:"backend"`
	Procs     int    `json:"procs,omitempty"`
	Queues    int    `json:"queues,omitempty"`
	Locks     string `json:"locks,omitempty"`
	HashLines int    `json:"hash_lines,omitempty"`
	CSShards  int    `json:"cs_shards,omitempty"`
	FireBatch int    `json:"fire_batch,omitempty"`
	// ReorderJoins, MatchBudget and Unlink mirror the session knobs of
	// the same names so a recovered session keeps its join order, budget
	// enforcement and unlinking behaviour.
	ReorderJoins string `json:"reorder_joins,omitempty"`
	MatchBudget  int64  `json:"match_budget,omitempty"`
	Unlink       bool   `json:"unlink,omitempty"`
	// Watch is the session's raw watch knob (-1 forced silent, 0 program
	// default, 1/2 explicit), re-resolved against the program on
	// recovery so per-batch trace output behaviour is preserved.
	Watch int `json:"watch,omitempty"`
	// Template records the template a forked session was created from
	// (informational; recovery uses the fork's own snapshot).
	Template string `json:"template,omitempty"`
}

// Open validates dir as a usable data directory, creating it (and its
// branch directories) as needed. Errors are deliberately explicit: the
// daemon reports them and exits instead of panicking partway in.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("wmlog: empty data directory path")
	}
	for _, d := range []string{dir, filepath.Join(dir, string(KindSession)), filepath.Join(dir, string(KindTemplate))} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("wmlog: cannot create data directory %s: %w", d, err)
		}
	}
	// Probe writability now, not at the first session create.
	probe := filepath.Join(dir, ".probe")
	if err := os.WriteFile(probe, []byte("ok"), 0o644); err != nil {
		return nil, fmt.Errorf("wmlog: data directory %s is not writable: %w", dir, err)
	}
	os.Remove(probe)
	return &Store{dir: dir}, nil
}

// Dir returns the store root.
func (st *Store) Dir() string { return st.dir }

// EntryDir returns (and creates) the directory for one persisted
// session or template.
func (st *Store) EntryDir(kind Kind, id string) (string, error) {
	d := filepath.Join(st.dir, string(kind), id)
	if err := os.MkdirAll(d, 0o755); err != nil {
		return "", fmt.Errorf("wmlog: cannot create %s directory for %s: %w", kind, id, err)
	}
	return d, nil
}

// Paths within an entry directory.
func ProgramPath(dir string) string  { return filepath.Join(dir, "program.ops5") }
func MetaPath(dir string) string     { return filepath.Join(dir, "meta.json") }
func LogPath(dir string) string      { return filepath.Join(dir, "delta.log") }
func SnapshotPath(dir string) string { return filepath.Join(dir, "snapshot.snap") }

// WriteMeta persists the entry's backend configuration.
func WriteMeta(dir string, m *Meta) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(MetaPath(dir), b, 0o644)
}

// ReadMeta loads the entry's backend configuration.
func ReadMeta(dir string) (*Meta, error) {
	b, err := os.ReadFile(MetaPath(dir))
	if err != nil {
		return nil, err
	}
	var m Meta
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("wmlog: %s: %w", MetaPath(dir), err)
	}
	return &m, nil
}

// List returns the persisted entry IDs of one branch, sorted, so
// recovery is deterministic.
func (st *Store) List(kind Kind) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(st.dir, string(kind)))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			out = append(out, e.Name())
		}
	}
	sort.Strings(out)
	return out, nil
}

// Remove deletes one entry's durable state.
func (st *Store) Remove(kind Kind, id string) error {
	return os.RemoveAll(filepath.Join(st.dir, string(kind), id))
}
