package wmlog

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"hash/crc32"
	"testing"
)

// frame wraps a gob payload in the snapshot container (magic, version,
// length, CRC) without going through Encode, so tests can build
// payloads Encode would refuse to write.
func frame(t *testing.T, payload []byte) []byte {
	t.Helper()
	var b []byte
	b = append(b, snapMagic...)
	b = binary.LittleEndian.AppendUint32(b, snapVersion)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(payload)))
	b = append(b, payload...)
	b = binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(payload))
	return b
}

// TestSnapshotFormatStamp: Encode stamps the current payload format and
// DecodeSnapshot round-trips it.
func TestSnapshotFormatStamp(t *testing.T) {
	s := &Snapshot{NextTag: 7, Wmes: []TaggedWME{{Tag: 1}}}
	b, err := s.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeSnapshot(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Format != snapFormat || got.NextTag != 7 {
		t.Fatalf("decoded Format=%d NextTag=%d, want %d/7", got.Format, got.NextTag, snapFormat)
	}
}

// TestSnapshotFormatMismatch: a payload stamped with a different format
// — a snapshot written by a different build — must fail with
// ErrSnapshotVersion, not half-decode.
func TestSnapshotFormatMismatch(t *testing.T) {
	for _, format := range []int{0, 1, snapFormat + 1, 999} {
		alien := Snapshot{Format: format, NextTag: 3}
		var payload bytes.Buffer
		if err := gob.NewEncoder(&payload).Encode(&alien); err != nil {
			t.Fatal(err)
		}
		_, err := DecodeSnapshot(frame(t, payload.Bytes()))
		if !errors.Is(err, ErrSnapshotVersion) {
			t.Fatalf("format %d: err = %v, want ErrSnapshotVersion", format, err)
		}
		if errors.Is(err, ErrSnapshotCorrupt) {
			t.Fatalf("format %d misreported as corruption: %v", format, err)
		}
	}
}
