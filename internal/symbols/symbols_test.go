package symbols_test

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/symbols"
)

func TestInternIsIdempotent(t *testing.T) {
	tab := symbols.NewTable()
	a := tab.Intern("block")
	b := tab.Intern("block")
	if a != b {
		t.Fatalf("same name interned to %d and %d", a, b)
	}
	if tab.Name(a) != "block" {
		t.Fatalf("Name(%d) = %q", a, tab.Name(a))
	}
}

func TestDistinctNamesGetDistinctIDs(t *testing.T) {
	tab := symbols.NewTable()
	seen := map[symbols.ID]string{}
	for i := 0; i < 1000; i++ {
		name := fmt.Sprintf("sym-%d", i)
		id := tab.Intern(name)
		if prev, ok := seen[id]; ok {
			t.Fatalf("ID %d assigned to both %q and %q", id, prev, name)
		}
		seen[id] = name
	}
	if tab.Len() != 1000 {
		t.Fatalf("Len = %d, want 1000", tab.Len())
	}
}

func TestZeroIDNeverIssued(t *testing.T) {
	tab := symbols.NewTable()
	for i := 0; i < 100; i++ {
		if id := tab.Intern(fmt.Sprintf("s%d", i)); id == symbols.None {
			t.Fatal("Intern returned the reserved None ID")
		}
	}
}

func TestLookup(t *testing.T) {
	tab := symbols.NewTable()
	if _, ok := tab.Lookup("ghost"); ok {
		t.Fatal("Lookup found a symbol that was never interned")
	}
	want := tab.Intern("real")
	got, ok := tab.Lookup("real")
	if !ok || got != want {
		t.Fatalf("Lookup = (%d, %v), want (%d, true)", got, ok, want)
	}
}

// Property: round-tripping any string through Intern/Name is identity.
func TestInternNameRoundTrip(t *testing.T) {
	tab := symbols.NewTable()
	f := func(s string) bool {
		return tab.Name(tab.Intern(s)) == s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentIntern(t *testing.T) {
	tab := symbols.NewTable()
	const goroutines = 8
	const names = 200
	ids := make([][]symbols.ID, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		g := g
		ids[g] = make([]symbols.ID, names)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < names; i++ {
				ids[g][i] = tab.Intern(fmt.Sprintf("name-%d", i))
			}
		}()
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		for i := 0; i < names; i++ {
			if ids[g][i] != ids[0][i] {
				t.Fatalf("goroutine %d got ID %d for name-%d, goroutine 0 got %d",
					g, ids[g][i], i, ids[0][i])
			}
		}
	}
}

func TestNamePanicsOnInvalidID(t *testing.T) {
	tab := symbols.NewTable()
	defer func() {
		if recover() == nil {
			t.Fatal("Name on never-issued ID did not panic")
		}
	}()
	tab.Name(symbols.ID(42))
}
