// Package symbols provides an interning table that maps symbol names to
// small integer IDs. All matchers compare symbols by ID, never by string,
// which is the Go analogue of the pointer-equality symbol compares the
// paper's C implementation relies on.
package symbols

import (
	"fmt"
	"sync"
)

// ID identifies an interned symbol. The zero ID is reserved and never
// returned by Intern, so it can safely denote "no symbol".
type ID uint32

// None is the reserved invalid symbol ID.
const None ID = 0

// Table interns strings. It is safe for concurrent use: the match
// goroutines look symbols up while the control process may intern new
// symbols produced by RHS evaluation.
type Table struct {
	mu    sync.RWMutex
	ids   map[string]ID
	names []string // names[id] == symbol text; names[0] is the reserved slot
}

// NewTable returns an empty symbol table.
func NewTable() *Table {
	return &Table{
		ids:   make(map[string]ID, 256),
		names: make([]string, 1, 256),
	}
}

// Intern returns the ID for name, creating one if needed.
func (t *Table) Intern(name string) ID {
	t.mu.RLock()
	id, ok := t.ids[name]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.ids[name]; ok {
		return id
	}
	id = ID(len(t.names))
	t.names = append(t.names, name)
	t.ids[name] = id
	return id
}

// Lookup returns the ID for name and whether it has been interned.
func (t *Table) Lookup(name string) (ID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.ids[name]
	return id, ok
}

// Name returns the text of an interned symbol. It panics on an ID that
// was never issued, which always indicates a bug in the caller.
func (t *Table) Name(id ID) string {
	t.mu.RLock()
	defer t.mu.RUnlock()
	if int(id) >= len(t.names) || id == None {
		panic(fmt.Sprintf("symbols: invalid ID %d", id))
	}
	return t.names[id]
}

// Len reports how many symbols have been interned.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.names) - 1
}
