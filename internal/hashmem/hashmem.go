// Package hashmem implements the paper's token storage: two large hash
// tables (left and right) holding the tokens of every two-input node's
// memories, organized in "lines". A line is the pair of same-index
// buckets from the left and right tables together with their
// extra-deletes lists; processing a single node activation touches
// exactly one line (paper footnote 4), which is what the per-line locks
// of the parallel matchers protect.
//
// Three storage layouts share the machinery:
//
//   - New builds the node-segregated layout: within a line, entries live
//     in per-(node, hash) runs reached through a small open-addressed
//     sub-index, so searches and deletes touch only same-node, same-hash
//     candidates instead of every colliding token. Runs are dense slices
//     kept compact by swap-remove. These tables are also adaptive: the
//     owner grows them at a drained point once the load factor climbs
//     (GrowTarget/Grow), so production-scale working memories never
//     degrade a line into a linear scan.
//   - NewLegacy builds the paper's original fixed-size layout — each
//     line is a pair of singly-linked token lists scanned linearly with
//     a node filter. It is the naive reference the differential tests
//     and benchmarks compare the segregated layout against, and the
//     deterministic Multimax simulator keeps it so the paper's scan
//     counts stay exact.
//   - NewPerNode is the vs1 list-based organization: one private
//     list-layout line per join node and no hashing, which reproduces
//     the linear-scan behaviour of Table 4-1's vs1 column.
//
// Segregating a line by full 64-bit hash is semantically safe because a
// join's left and right hashes fold the same equality-test values: two
// tokens whose hashes differ cannot satisfy the node's equality tests,
// so confining the opposite-memory search to the matching run can never
// miss a pair (non-equality predicates are still applied inside the
// run). A node with no equality tests hashes every token identically
// and its whole memory lands in one run, which is exactly the per-node
// scan such a cross product requires.
package hashmem

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/rete"
	"repro/internal/stats"
	"repro/internal/wm"
)

// run is one (node, hash) equivalence class of a segregated line: every
// entry in mem shares the node and the full 64-bit token hash. A run
// whose slices are both empty stays in the sub-index as a reusable key
// slot so open-addressed probe sequences remain intact.
type run struct {
	node *rete.JoinNode
	hash uint64
	mem  [2][]*rete.Entry // indexed by rete.Side
}

// Line is a pair of corresponding left/right buckets plus the parked
// early deletes for each side. List-layout tables (vs1, legacy) store
// tokens on the Mem lists; segregated tables store them in runs. XDel
// is an intrusive list in every layout: parked conjugate minuses are
// few and short-lived.
type Line struct {
	Mem  [2]rete.EntryList // list layouts: indexed by rete.Side
	XDel [2]rete.EntryList // conjugate minus tokens that arrived early

	runs []run // segregated layout: open-addressed by (node, hash)
	used int   // sub-index slots holding a key (live or emptied)
	live int   // live entries across runs (line depth)
}

// Table is a set of lines. With Hashed true, lines are selected by token
// hash (vs2 and the parallel matchers); otherwise one line per join node
// (vs1).
type Table struct {
	Lines  []Line
	mask   uint64
	Hashed bool
	seg    bool // node-segregated run layout (New); false for the list layouts

	// entries counts live tokens across the table and maxDepth is the
	// high-water line depth; both are updated under the per-line locks
	// but read table-wide, hence atomic. The resize counters are owned
	// by whoever performs Grow (the control process, drained).
	entries  atomic.Int64
	maxDepth atomic.Int64
	resizes  int64
	rehashed int64
}

// Adaptive-growth policy for segregated tables: grow once the mean line
// holds more than growLoadFactor live entries, to the smallest power of
// two bringing the mean back to growTargetLoad, and never past
// growMaxLines. The trigger/target pair is deliberately lazy: the
// sub-index keeps intra-line scans short whatever the depth, so the
// table only needs enough lines to keep locks uncontended and runs off
// any single line — growing to load ≤ 1 would balloon the line array
// past cache for no scan benefit.
const (
	growLoadFactor = 16
	growTargetLoad = 4
	growMaxLines   = 1 << 21
)

// New returns an adaptive node-segregated table with at least nLines
// lines, rounded up to a power of two.
func New(nLines int) *Table {
	t := newHashed(nLines)
	t.seg = true
	return t
}

// NewLegacy returns a fixed-size table in the paper's original layout:
// linked-list lines scanned linearly with a per-entry node filter. It
// never grows.
func NewLegacy(nLines int) *Table {
	return newHashed(nLines)
}

func newHashed(nLines int) *Table {
	n := 1
	for n < nLines {
		n <<= 1
	}
	return &Table{Lines: make([]Line, n), mask: uint64(n - 1), Hashed: true}
}

// NewPerNode returns a vs1-style table with one private line per join
// node.
func NewPerNode(numJoins int) *Table {
	if numJoins == 0 {
		numJoins = 1
	}
	return &Table{Lines: make([]Line, numJoins)}
}

// Segregated reports whether the table uses the node-segregated run
// layout (and therefore grows adaptively).
func (t *Table) Segregated() bool { return t.seg }

// LineIndex picks the line for an activation of node j with token hash h.
func (t *Table) LineIndex(j *rete.JoinNode, h uint64) int {
	if t.Hashed {
		return int(h & t.mask)
	}
	return j.ID
}

// fibMul redistributes a key across the whole word (Fibonacci hashing):
// the sub-index slot comes from the product's HIGH bits, because every
// hash in a line shares its low bits — they selected the line.
const fibMul = 0x9E3779B97F4A7C15

// slotOf returns the probe start for hash in a sub-index of size n
// (power of two).
func slotOf(hash uint64, n int) int {
	return int((hash * fibMul) >> (64 - uint(bits.TrailingZeros(uint(n)))))
}

// Ref is an opaque handle to the (node, hash) run an activation landed
// in, resolved by UpdateOwn while the line's modification lock is held.
// SearchOpposite consumes it instead of re-probing, so the open-addressed
// sub-index — which same-side inserts mutate — is only ever touched
// under that lock; the run struct itself stays valid across concurrent
// sub-index growth (growth copies run values, and the opposite-side
// slice this activation reads cannot be mutated while its side holds
// the line). Zero for list-layout tables.
type Ref struct{ r *run }

// findRun returns the line's run for (j, hash), optionally creating it.
// The sub-index is open-addressed with linear probing; emptied runs keep
// their key and are reused on an exact match, so deletion never needs
// tombstone repair.
func (l *Line) findRun(j *rete.JoinNode, hash uint64, create bool) *run {
	if l.runs == nil {
		if !create {
			return nil
		}
		l.runs = make([]run, 4)
	}
	n := len(l.runs)
	i := slotOf(hash, n)
	for probes := 0; probes < n; probes++ {
		r := &l.runs[i&(n-1)]
		if r.node == nil {
			if !create {
				return nil
			}
			if l.used+1 > n-n/4 { // keep a quarter of the slots empty
				l.growRuns()
				return l.findRun(j, hash, create)
			}
			r.node, r.hash = j, hash
			l.used++
			return r
		}
		if r.node == j && r.hash == hash {
			return r
		}
		i++
	}
	if !create {
		return nil
	}
	l.growRuns()
	return l.findRun(j, hash, create)
}

// growRuns doubles the sub-index, dropping emptied runs (compaction
// happens here rather than on every delete).
func (l *Line) growRuns() {
	old := l.runs
	n := len(old) * 2
	if n == 0 {
		n = 4
	}
	l.runs = make([]run, n)
	l.used = 0
	for i := range old {
		r := &old[i]
		if r.node == nil || (len(r.mem[0]) == 0 && len(r.mem[1]) == 0) {
			continue
		}
		j := slotOf(r.hash, n)
		for {
			dst := &l.runs[j&(n-1)]
			if dst.node == nil {
				*dst = *r
				l.used++
				break
			}
			j++
		}
	}
}

// removeFromRun takes one entry for wmes out of the run's side slice,
// scanning newest-first (the LIFO discipline of the list layout) and
// swap-removing to keep the run dense. All entries in a run already
// share the node and hash, so only the token comparison remains.
func (r *run) removeFromRun(side rete.Side, wmes []*wm.WME) (*rete.Entry, int) {
	s := r.mem[side]
	for i := len(s) - 1; i >= 0; i-- {
		if rete.SameWmes(s[i].Wmes, wmes) {
			e := s[i]
			last := len(s) - 1
			s[i] = s[last]
			s[last] = nil
			r.mem[side] = s[:last]
			return e, len(s) - i
		}
	}
	return nil, len(s)
}

// Recorder accumulates the sequential-matcher statistics of Tables
// 4-1..4-3. NodeCount tracks per-(side, node) live token counts so the
// "opposite memory non-empty" convention of Table 4-2 can be applied
// identically for list and hash memories. NodeExamined accumulates the
// opposite-memory candidates every activation of a node examined
// (unconditionally — it measures work done, not the paper's
// non-empty-only convention); the engine's per-rule match budget reads
// per-cycle deltas of it.
type Recorder struct {
	M            stats.Match
	NodeCount    [2][]int64
	NodeExamined []int64
}

// NewRecorder sizes the per-node counters for a network.
func NewRecorder(numJoins int) *Recorder {
	r := &Recorder{}
	r.NodeCount[0] = make([]int64, numJoins)
	r.NodeCount[1] = make([]int64, numJoins)
	r.NodeExamined = make([]int64, numJoins)
	return r
}

// Emit receives one output token of a node activation. Positive nodes
// emit extended tokens (left token + right WME); negated nodes re-emit
// the left token itself.
type Emit func(sign bool, wmes []*wm.WME)

// Pools is a per-worker allocation cache for the match hot path: an
// arena for the token slices built per matching pair, and a free list
// of memory entries recycled when a delete unlinks them. Each matcher
// process owns one (no synchronization); a nil *Pools falls back to
// plain allocation, which the Multimax simulator keeps for its
// deterministic replay.
//
// Token slices deliberately do NOT recycle: an output token fans out
// to every successor and terminal of a node and is retained by node
// memories and the conflict set, so its lifetime escapes the task that
// built it. The arena instead amortizes those allocations to one large
// chunk per tokenChunk pointers; entries, whose lifetime is exactly
// bracketed by insert and delete under the line lock, do recycle.
type Pools struct {
	tok     []*wm.WME
	entries []*rete.Entry
}

const (
	tokenChunk   = 4096
	entryPoolCap = 1024
)

// MakeToken returns a zeroed token slice of length n with no spare
// capacity (appending to an emitted token must never alias another).
func (p *Pools) MakeToken(n int) []*wm.WME {
	if p == nil {
		return make([]*wm.WME, n)
	}
	if len(p.tok) < n {
		c := tokenChunk
		if n > c {
			c = n
		}
		p.tok = make([]*wm.WME, c)
	}
	s := p.tok[0:n:n]
	p.tok = p.tok[n:]
	return s
}

// newEntry builds a memory entry, reusing a recycled one when possible.
func (p *Pools) newEntry(j *rete.JoinNode, side rete.Side, hash uint64, wmes []*wm.WME) *rete.Entry {
	if p == nil || len(p.entries) == 0 {
		return &rete.Entry{Node: j, Side: side, Hash: hash, Wmes: wmes}
	}
	n := len(p.entries) - 1
	e := p.entries[n]
	p.entries[n] = nil
	p.entries = p.entries[:n]
	e.Node, e.Side, e.Hash, e.Wmes = j, side, hash, wmes
	return e
}

// FreeEntry recycles an unlinked entry. Callers own the entry
// exclusively at that point: Remove unlinked it under the line lock and
// no other process can reach it. The caller must be done reading
// NegCount (negated-node deletes read it inside SearchOpposite).
func (p *Pools) FreeEntry(e *rete.Entry) {
	if p == nil || e == nil || len(p.entries) >= entryPoolCap {
		return
	}
	e.Node, e.Wmes, e.Next = nil, nil, nil
	e.NegCount.Store(0)
	p.entries = append(p.entries, e)
}

// StepResult reports what an activation did, for cost accounting by the
// Multimax simulator.
type StepResult struct {
	Proceeded   bool // false: annihilated with a conjugate or parked
	Parked      bool // early delete parked on the extra-deletes list
	Annihilated bool // plus met a parked minus
	OwnScanned  int  // entries scanned in own memory (delete search)
	OppExamined int  // candidate tokens examined in the opposite memory
	Pairs       int  // matching pairs / negation transitions emitted
}

// UpdateOwn performs the first half of a coalesced-node activation on
// line idx: it adds the token to, or deletes it from, the node's own
// memory, applying the conjugate-pair protocol. In the MRSW locking
// scheme this is the part that runs under the modification lock. It
// returns the affected entry (the freshly inserted one, or the removed
// one whose NegCount a negated-node caller still needs) and, for
// segregated tables, the Ref the matching SearchOpposite call must be
// handed. The Ref is always resolved for a Proceeded activation.
func (t *Table) UpdateOwn(idx int, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, hash uint64, rec *Recorder, pools *Pools) (*rete.Entry, Ref, StepResult) {
	line := &t.Lines[idx]
	var res StepResult
	var ref Ref
	if sign {
		// A plus annihilates with a parked early minus for the same token.
		if e, _ := line.XDel[side].Remove(j, side, hash, wmes); e != nil {
			pools.FreeEntry(e)
			res.Annihilated = true
			return nil, ref, res
		}
		e := pools.newEntry(j, side, hash, wmes)
		if t.seg {
			r := line.findRun(j, hash, true)
			r.mem[side] = append(r.mem[side], e)
			ref.r = r
		} else {
			line.Mem[side].Push(e)
		}
		line.live++
		t.noteInsert(line.live)
		if rec != nil {
			rec.NodeCount[side][j.ID]++
		}
		res.Proceeded = true
		return e, ref, res
	}
	var e *rete.Entry
	var scanned int
	if t.seg {
		if r := line.findRun(j, hash, false); r != nil {
			e, scanned = r.removeFromRun(side, wmes)
			ref.r = r
		}
	} else {
		e, scanned = line.Mem[side].Remove(j, side, hash, wmes)
	}
	res.OwnScanned = scanned
	if e == nil {
		// Early delete: park it and do not otherwise process the token.
		line.XDel[side].Push(pools.newEntry(j, side, hash, wmes))
		res.Parked = true
		return nil, Ref{}, res
	}
	line.live--
	t.entries.Add(-1)
	if rec != nil {
		rec.NodeCount[side][j.ID]--
	}
	res.Proceeded = true
	return e, ref, res
}

// noteInsert maintains the table-wide load and depth gauges after one
// insert under the line lock. The depth high-water mark is a plain
// load-then-CAS: almost every insert takes only the load and branch.
func (t *Table) noteInsert(depth int) {
	t.entries.Add(1)
	d := int64(depth)
	for {
		cur := t.maxDepth.Load()
		if d <= cur {
			return
		}
		if t.maxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// SearchOpposite performs the second half of an activation on line idx:
// comparing the token against the opposite memory of the same line and
// emitting the resulting tokens. For negated nodes it maintains the
// join counts. entry and ref are UpdateOwn's results (the entry for
// negated-node count handling, the ref so segregated tables never probe
// the sub-index outside the modification lock). In the MRSW scheme this
// part runs without the modification lock for positive nodes; negated
// right-side activations update left counts atomically.
func (t *Table) SearchOpposite(idx int, ref Ref, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, entry *rete.Entry, rec *Recorder, pools *Pools, emit Emit) StepResult {
	var res StepResult
	if j.Negated {
		if t.seg {
			searchNegatedRun(ref.r, j, side, sign, wmes, entry, &res, emit)
		} else {
			searchNegatedList(&t.Lines[idx], j, side, sign, wmes, entry, &res, emit)
		}
	} else if t.seg {
		opp := side ^ 1
		if r := ref.r; r != nil {
			for _, e := range r.mem[opp] {
				res.OppExamined++
				var left []*wm.WME
				var right *wm.WME
				if side == rete.Left {
					left, right = wmes, e.Wmes[0]
				} else {
					left, right = e.Wmes, wmes[0]
				}
				if !j.TestPair(left, right) {
					continue
				}
				res.Pairs++
				child := pools.MakeToken(len(left) + 1)
				copy(child, left)
				child[len(left)] = right
				emit(sign, child)
			}
		}
	} else {
		line := &t.Lines[idx]
		opp := side ^ 1
		for e := line.Mem[opp].Head; e != nil; e = e.Next {
			if e.Node != j || e.Side != opp {
				continue // hash collision with another node's tokens
			}
			res.OppExamined++
			var left []*wm.WME
			var right *wm.WME
			if side == rete.Left {
				left, right = wmes, e.Wmes[0]
			} else {
				left, right = e.Wmes, wmes[0]
			}
			if !j.TestPair(left, right) {
				continue
			}
			res.Pairs++
			child := pools.MakeToken(len(left) + 1)
			copy(child, left)
			child[len(left)] = right
			emit(sign, child)
		}
	}
	if rec != nil {
		recordSearch(rec, j, side, &res)
	}
	return res
}

// searchNegatedRun maintains negation counts within the (node, hash)
// run: a right WME can only match left tokens whose hash equals its
// own, so count updates never need to look outside the run.
func searchNegatedRun(r *run, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, entry *rete.Entry, res *StepResult, emit Emit) {
	if side == rete.Left {
		if sign {
			var count int32
			if r != nil {
				for _, e := range r.mem[rete.Right] {
					res.OppExamined++
					if j.TestPair(wmes, e.Wmes[0]) {
						count++
					}
				}
			}
			entry.NegCount.Store(count)
			if count == 0 {
				res.Pairs++
				emit(true, wmes)
			}
			return
		}
		// Deleting a left token that had passed (count 0) retracts it.
		if entry.NegCount.Load() == 0 {
			res.Pairs++
			emit(false, wmes)
		}
		return
	}
	// Right-side activation: adjust the counts of matching left tokens.
	if r == nil {
		return
	}
	w := wmes[0]
	for _, e := range r.mem[rete.Left] {
		res.OppExamined++
		if !j.TestPair(e.Wmes, w) {
			continue
		}
		if sign {
			if e.NegCount.Add(1) == 1 {
				res.Pairs++
				emit(false, e.Wmes)
			}
		} else {
			if e.NegCount.Add(-1) == 0 {
				res.Pairs++
				emit(true, e.Wmes)
			}
		}
	}
}

func searchNegatedList(line *Line, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, entry *rete.Entry, res *StepResult, emit Emit) {
	if side == rete.Left {
		if sign {
			// Count the matching right WMEs; pass the token through when
			// there are none.
			var count int32
			for e := line.Mem[rete.Right].Head; e != nil; e = e.Next {
				if e.Node != j || e.Side != rete.Right {
					continue
				}
				res.OppExamined++
				if j.TestPair(wmes, e.Wmes[0]) {
					count++
				}
			}
			entry.NegCount.Store(count)
			if count == 0 {
				res.Pairs++
				emit(true, wmes)
			}
			return
		}
		// Deleting a left token that had passed (count 0) retracts it.
		if entry.NegCount.Load() == 0 {
			res.Pairs++
			emit(false, wmes)
		}
		return
	}
	// Right-side activation: adjust the counts of matching left tokens.
	w := wmes[0]
	for e := line.Mem[rete.Left].Head; e != nil; e = e.Next {
		if e.Node != j || e.Side != rete.Left {
			continue
		}
		res.OppExamined++
		if !j.TestPair(e.Wmes, w) {
			continue
		}
		if sign {
			if e.NegCount.Add(1) == 1 {
				res.Pairs++
				emit(false, e.Wmes)
			}
		} else {
			if e.NegCount.Add(-1) == 0 {
				res.Pairs++
				emit(true, e.Wmes)
			}
		}
	}
}

func recordSearch(rec *Recorder, j *rete.JoinNode, side rete.Side, res *StepResult) {
	rec.NodeExamined[j.ID] += int64(res.OppExamined)
	opp := side ^ 1
	nonEmpty := rec.NodeCount[opp][j.ID] > 0
	if side == rete.Left {
		rec.M.LeftActs++
		if nonEmpty {
			rec.M.OppNonEmptyLeft++
			rec.M.OppExaminedLeft += int64(res.OppExamined)
		}
	} else {
		rec.M.RightActs++
		if nonEmpty {
			rec.M.OppNonEmptyRight++
			rec.M.OppExaminedRight += int64(res.OppExamined)
		}
	}
	rec.M.Pairs += int64(res.Pairs)
}

// RecordDelete accounts a delete's own-memory scan (Table 4-3).
func RecordDelete(rec *Recorder, side rete.Side, res *StepResult) {
	if rec == nil {
		return
	}
	if side == rete.Left {
		rec.M.DeletesLeft++
		rec.M.SameExaminedLeft += int64(res.OwnScanned)
	} else {
		rec.M.DeletesRight++
		rec.M.SameExaminedRight += int64(res.OwnScanned)
	}
}

// GrowTarget returns the line count an adaptive table should grow to at
// the next drained point, or 0 when no growth is due. Only segregated
// tables grow: the legacy layout is deliberately fixed (it is the
// degradation baseline) and per-node tables have no hashing to rebuild.
func (t *Table) GrowTarget() int {
	if !t.seg {
		return 0
	}
	n := len(t.Lines)
	if n >= growMaxLines {
		return 0
	}
	live := t.entries.Load()
	if live <= int64(n)*growLoadFactor {
		return 0
	}
	target := n
	for int64(target)*growTargetLoad < live && target < growMaxLines {
		target <<= 1
	}
	return target
}

// Grow returns a new table with nLines lines holding every live entry
// and parked early delete of t, re-slotted by its stored 64-bit hash.
// The caller must hold t exclusively (sequential matchers between
// submits; the parallel control process drained) and must republish the
// lock arrays alongside the table so footnote 4's one-lock-per-line
// discipline holds at the new size. Entry objects move — they are never
// copied — so live *Entry pointers (negation counts) stay valid.
func (t *Table) Grow(nLines int) *Table {
	nt := New(nLines)
	moved := int64(0)
	var maxDepth int64
	for i := range t.Lines {
		l := &t.Lines[i]
		for ri := range l.runs {
			r := &l.runs[ri]
			if r.node == nil {
				continue
			}
			for s := 0; s < 2; s++ {
				for _, e := range r.mem[s] {
					dl := &nt.Lines[e.Hash&nt.mask]
					dr := dl.findRun(e.Node, e.Hash, true)
					dr.mem[s] = append(dr.mem[s], e)
					dl.live++
					if int64(dl.live) > maxDepth {
						maxDepth = int64(dl.live)
					}
					moved++
				}
			}
		}
		for s := 0; s < 2; s++ {
			for e := l.XDel[s].Head; e != nil; {
				next := e.Next
				e.Next = nil
				nt.Lines[e.Hash&nt.mask].XDel[s].Push(e)
				e = next
			}
			l.XDel[s] = rete.EntryList{}
		}
	}
	nt.entries.Store(moved)
	nt.maxDepth.Store(maxDepth)
	nt.resizes = t.resizes + 1
	nt.rehashed = t.rehashed + moved
	return nt
}

// MemStats snapshots the table's memory gauges and resize counters for
// /metrics and the benchmarks. Exact while the table is quiescent (the
// same condition under which the matchers read their other counters).
func (t *Table) MemStats() stats.Memory {
	return stats.Memory{
		Lines:        int64(len(t.Lines)),
		Entries:      t.entries.Load(),
		MaxLineDepth: t.maxDepth.Load(),
		Resizes:      t.resizes,
		Rehashed:     t.rehashed,
	}
}

// SizeByNode tallies the live tokens per (node, side) across the whole
// table — the introspection behind the REPL's matches command.
func (t *Table) SizeByNode(numJoins int) [][2]int {
	out := make([][2]int, numJoins)
	for i := range t.Lines {
		l := &t.Lines[i]
		for s := 0; s < 2; s++ {
			for e := l.Mem[s].Head; e != nil; e = e.Next {
				out[e.Node.ID][s]++
			}
		}
		for ri := range l.runs {
			r := &l.runs[ri]
			if r.node == nil {
				continue
			}
			for s := 0; s < 2; s++ {
				out[r.node.ID][s] += len(r.mem[s])
			}
		}
	}
	return out
}

// CheckDrained verifies the conjugate-pair invariant: after a match
// phase completes, no parked early deletes may remain. A leftover entry
// means an add/delete pair was lost — always a matcher bug.
func (t *Table) CheckDrained() error {
	for i := range t.Lines {
		l := &t.Lines[i]
		for s := 0; s < 2; s++ {
			if l.XDel[s].Head != nil {
				e := l.XDel[s].Head
				return fmt.Errorf("line %d: unmatched early delete for node %d (%s side, token len %d)",
					i, e.Node.ID, rete.Side(s), len(e.Wmes))
			}
		}
	}
	return nil
}

// EnsureNodes grows a per-node (vs1) table so node IDs up to
// numJoins-1 have a private line, preserving existing lines. Hashed
// tables need no growth (lines are picked by token hash, not node ID);
// matchers call this when adopting a network epoch with new joins.
func (t *Table) EnsureNodes(numJoins int) {
	if t.Hashed || numJoins <= len(t.Lines) {
		return
	}
	lines := make([]Line, numJoins)
	copy(lines, t.Lines)
	t.Lines = lines
}

// EnsureNodes grows the per-node counters for a network epoch with new
// joins.
func (r *Recorder) EnsureNodes(numJoins int) {
	for s := 0; s < 2; s++ {
		if numJoins > len(r.NodeCount[s]) {
			grown := make([]int64, numJoins)
			copy(grown, r.NodeCount[s])
			r.NodeCount[s] = grown
		}
	}
	if numJoins > len(r.NodeExamined) {
		grown := make([]int64, numJoins)
		copy(grown, r.NodeExamined)
		r.NodeExamined = grown
	}
}

// ExciseNodes unlinks every memory entry and parked early delete
// belonging to a dead node (keyed by node ID) and reports how many
// entries were dropped. rec, when non-nil, has the dead nodes' token
// counts zeroed. The caller must hold the table exclusively (sequential
// matchers between activations; the parallel matcher drained).
func (t *Table) ExciseNodes(dead map[int]bool, rec *Recorder) (removed int) {
	if len(dead) == 0 {
		return 0
	}
	for i := range t.Lines {
		l := &t.Lines[i]
		for s := 0; s < 2; s++ {
			n := exciseList(&l.Mem[s], dead)
			l.live -= n
			removed += n
			removed += exciseList(&l.XDel[s], dead)
		}
		for ri := range l.runs {
			r := &l.runs[ri]
			if r.node == nil || !dead[r.node.ID] {
				continue
			}
			// Keep the keyed slot so probe sequences stay intact; the next
			// sub-index growth compacts it away.
			for s := 0; s < 2; s++ {
				n := len(r.mem[s])
				l.live -= n
				removed += n
				r.mem[s] = nil
			}
		}
	}
	// removed includes parked XDel entries, which never counted toward
	// the live gauge; recompute exactly.
	var live int64
	for i := range t.Lines {
		live += int64(t.Lines[i].live)
	}
	t.entries.Store(live)
	if rec != nil {
		for id := range dead {
			for s := 0; s < 2; s++ {
				if id < len(rec.NodeCount[s]) {
					rec.NodeCount[s][id] = 0
				}
			}
			if id < len(rec.NodeExamined) {
				rec.NodeExamined[id] = 0
			}
		}
	}
	return removed
}

func exciseList(l *rete.EntryList, dead map[int]bool) (removed int) {
	var prev *rete.Entry
	for cur := l.Head; cur != nil; {
		next := cur.Next
		if dead[cur.Node.ID] {
			if prev == nil {
				l.Head = next
			} else {
				prev.Next = next
			}
			cur.Next = nil
			l.Len--
			removed++
		} else {
			prev = cur
		}
		cur = next
	}
	return removed
}

// ForEachOutput re-derives the historical output tokens of join j from
// its stored memories and calls fn for each: for a positive node every
// matching (left token, right WME) pair in the same line, for a negated
// node every left token whose negation count is zero. Replay uses this
// to seed newly attached successors and terminals of a pre-existing
// join with the tokens it has already emitted. Correct on hashed tables
// because both sides of a matching pair fold the same equality-test
// values into their hash and therefore share a line — and, in the
// segregated layout, a run. The caller must hold the table exclusively.
func (t *Table) ForEachOutput(j *rete.JoinNode, pools *Pools, fn func(wmes []*wm.WME)) {
	if t.seg {
		for i := range t.Lines {
			l := &t.Lines[i]
			for ri := range l.runs {
				r := &l.runs[ri]
				if r.node != j {
					continue
				}
				for _, le := range r.mem[rete.Left] {
					if j.Negated {
						if le.NegCount.Load() == 0 {
							fn(le.Wmes)
						}
						continue
					}
					for _, re := range r.mem[rete.Right] {
						if !j.TestPair(le.Wmes, re.Wmes[0]) {
							continue
						}
						child := pools.MakeToken(len(le.Wmes) + 1)
						copy(child, le.Wmes)
						child[len(le.Wmes)] = re.Wmes[0]
						fn(child)
					}
				}
			}
		}
		return
	}
	lines := t.Lines
	if !t.Hashed {
		lines = t.Lines[j.ID : j.ID+1]
	}
	for i := range lines {
		l := &lines[i]
		for le := l.Mem[rete.Left].Head; le != nil; le = le.Next {
			if le.Node != j || le.Side != rete.Left {
				continue
			}
			if j.Negated {
				if le.NegCount.Load() == 0 {
					fn(le.Wmes)
				}
				continue
			}
			for re := l.Mem[rete.Right].Head; re != nil; re = re.Next {
				if re.Node != j || re.Side != rete.Right {
					continue
				}
				if !j.TestPair(le.Wmes, re.Wmes[0]) {
					continue
				}
				child := pools.MakeToken(len(le.Wmes) + 1)
				copy(child, le.Wmes)
				child[len(le.Wmes)] = re.Wmes[0]
				fn(child)
			}
		}
	}
}
