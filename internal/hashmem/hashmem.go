// Package hashmem implements the paper's token storage: two large hash
// tables (left and right) holding the tokens of every two-input node's
// memories, organized in "lines". A line is the pair of same-index
// buckets from the left and right tables together with their
// extra-deletes lists; processing a single node activation touches
// exactly one line (paper footnote 4), which is what the per-line locks
// of the parallel matchers protect.
//
// The vs1 list-based matcher reuses the same machinery with one private
// line per join node and no hashing — its "bucket" is then the node's
// whole memory, which reproduces the linear-scan behaviour of Table 4-1's
// vs1 column.
package hashmem

import (
	"fmt"

	"repro/internal/rete"
	"repro/internal/stats"
	"repro/internal/wm"
)

// Line is a pair of corresponding left/right buckets plus the parked
// early deletes for each side.
type Line struct {
	Mem  [2]rete.EntryList // indexed by rete.Side
	XDel [2]rete.EntryList // conjugate minus tokens that arrived early
}

// Table is a set of lines. With Hashed true, lines are selected by token
// hash (vs2 and the parallel matchers); otherwise one line per join node
// (vs1).
type Table struct {
	Lines  []Line
	mask   uint64
	Hashed bool
}

// New returns a hashed table with at least nLines lines, rounded up to a
// power of two.
func New(nLines int) *Table {
	n := 1
	for n < nLines {
		n <<= 1
	}
	return &Table{Lines: make([]Line, n), mask: uint64(n - 1), Hashed: true}
}

// NewPerNode returns a vs1-style table with one private line per join
// node.
func NewPerNode(numJoins int) *Table {
	if numJoins == 0 {
		numJoins = 1
	}
	return &Table{Lines: make([]Line, numJoins)}
}

// LineIndex picks the line for an activation of node j with token hash h.
func (t *Table) LineIndex(j *rete.JoinNode, h uint64) int {
	if t.Hashed {
		return int(h & t.mask)
	}
	return j.ID
}

// Recorder accumulates the sequential-matcher statistics of Tables
// 4-1..4-3. NodeCount tracks per-(side, node) live token counts so the
// "opposite memory non-empty" convention of Table 4-2 can be applied
// identically for list and hash memories.
type Recorder struct {
	M         stats.Match
	NodeCount [2][]int64
}

// NewRecorder sizes the per-node counters for a network.
func NewRecorder(numJoins int) *Recorder {
	r := &Recorder{}
	r.NodeCount[0] = make([]int64, numJoins)
	r.NodeCount[1] = make([]int64, numJoins)
	return r
}

// Emit receives one output token of a node activation. Positive nodes
// emit extended tokens (left token + right WME); negated nodes re-emit
// the left token itself.
type Emit func(sign bool, wmes []*wm.WME)

// Pools is a per-worker allocation cache for the match hot path: an
// arena for the token slices built per matching pair, and a free list
// of memory entries recycled when a delete unlinks them. Each matcher
// process owns one (no synchronization); a nil *Pools falls back to
// plain allocation, which the Multimax simulator keeps for its
// deterministic replay.
//
// Token slices deliberately do NOT recycle: an output token fans out
// to every successor and terminal of a node and is retained by node
// memories and the conflict set, so its lifetime escapes the task that
// built it. The arena instead amortizes those allocations to one large
// chunk per tokenChunk pointers; entries, whose lifetime is exactly
// bracketed by insert and delete under the line lock, do recycle.
type Pools struct {
	tok     []*wm.WME
	entries []*rete.Entry
}

const (
	tokenChunk   = 4096
	entryPoolCap = 1024
)

// MakeToken returns a zeroed token slice of length n with no spare
// capacity (appending to an emitted token must never alias another).
func (p *Pools) MakeToken(n int) []*wm.WME {
	if p == nil {
		return make([]*wm.WME, n)
	}
	if len(p.tok) < n {
		c := tokenChunk
		if n > c {
			c = n
		}
		p.tok = make([]*wm.WME, c)
	}
	s := p.tok[0:n:n]
	p.tok = p.tok[n:]
	return s
}

// newEntry builds a memory entry, reusing a recycled one when possible.
func (p *Pools) newEntry(j *rete.JoinNode, side rete.Side, hash uint64, wmes []*wm.WME) *rete.Entry {
	if p == nil || len(p.entries) == 0 {
		return &rete.Entry{Node: j, Side: side, Hash: hash, Wmes: wmes}
	}
	n := len(p.entries) - 1
	e := p.entries[n]
	p.entries[n] = nil
	p.entries = p.entries[:n]
	e.Node, e.Side, e.Hash, e.Wmes = j, side, hash, wmes
	return e
}

// FreeEntry recycles an unlinked entry. Callers own the entry
// exclusively at that point: Remove unlinked it under the line lock and
// no other process can reach it. The caller must be done reading
// NegCount (negated-node deletes read it inside SearchOpposite).
func (p *Pools) FreeEntry(e *rete.Entry) {
	if p == nil || e == nil || len(p.entries) >= entryPoolCap {
		return
	}
	e.Node, e.Wmes, e.Next = nil, nil, nil
	e.NegCount.Store(0)
	p.entries = append(p.entries, e)
}

// StepResult reports what an activation did, for cost accounting by the
// Multimax simulator.
type StepResult struct {
	Proceeded   bool // false: annihilated with a conjugate or parked
	Parked      bool // early delete parked on the extra-deletes list
	Annihilated bool // plus met a parked minus
	OwnScanned  int  // entries scanned in own memory (delete search)
	OppExamined int  // candidate tokens examined in the opposite memory
	Pairs       int  // matching pairs / negation transitions emitted
}

// UpdateOwn performs the first half of a coalesced-node activation: it
// adds the token to, or deletes it from, the node's own memory in this
// line, applying the conjugate-pair protocol. In the MRSW locking scheme
// this is the part that runs under the modification lock. It returns the
// affected entry (the freshly inserted one, or the removed one whose
// NegCount a negated-node caller still needs).
func UpdateOwn(line *Line, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, hash uint64, rec *Recorder, pools *Pools) (*rete.Entry, StepResult) {
	var res StepResult
	if sign {
		// A plus annihilates with a parked early minus for the same token.
		if e, _ := line.XDel[side].Remove(j, side, wmes); e != nil {
			pools.FreeEntry(e)
			res.Annihilated = true
			return nil, res
		}
		e := pools.newEntry(j, side, hash, wmes)
		line.Mem[side].Push(e)
		if rec != nil {
			rec.NodeCount[side][j.ID]++
		}
		res.Proceeded = true
		return e, res
	}
	e, scanned := line.Mem[side].Remove(j, side, wmes)
	res.OwnScanned = scanned
	if e == nil {
		// Early delete: park it and do not otherwise process the token.
		line.XDel[side].Push(pools.newEntry(j, side, hash, wmes))
		res.Parked = true
		return nil, res
	}
	if rec != nil {
		rec.NodeCount[side][j.ID]--
	}
	res.Proceeded = true
	return e, res
}

// SearchOpposite performs the second half of an activation: comparing
// the token against the opposite memory of the same line and emitting
// the resulting tokens. For negated nodes it maintains the join counts.
// entry is UpdateOwn's result (needed for negated-node count handling).
// In the MRSW scheme this part runs without the modification lock for
// positive nodes; negated right-side activations update left counts
// atomically.
func SearchOpposite(line *Line, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, entry *rete.Entry, rec *Recorder, pools *Pools, emit Emit) StepResult {
	var res StepResult
	opp := side ^ 1
	if j.Negated {
		searchOppositeNegated(line, j, side, sign, wmes, entry, &res, emit)
	} else {
		for e := line.Mem[opp].Head; e != nil; e = e.Next {
			if e.Node != j || e.Side != opp {
				continue // hash collision with another node's tokens
			}
			res.OppExamined++
			var left []*wm.WME
			var right *wm.WME
			if side == rete.Left {
				left, right = wmes, e.Wmes[0]
			} else {
				left, right = e.Wmes, wmes[0]
			}
			if !j.TestPair(left, right) {
				continue
			}
			res.Pairs++
			child := pools.MakeToken(len(left) + 1)
			copy(child, left)
			child[len(left)] = right
			emit(sign, child)
		}
	}
	if rec != nil {
		recordSearch(rec, j, side, sign, &res)
	}
	return res
}

func searchOppositeNegated(line *Line, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME, entry *rete.Entry, res *StepResult, emit Emit) {
	if side == rete.Left {
		if sign {
			// Count the matching right WMEs; pass the token through when
			// there are none.
			var count int32
			for e := line.Mem[rete.Right].Head; e != nil; e = e.Next {
				if e.Node != j || e.Side != rete.Right {
					continue
				}
				res.OppExamined++
				if j.TestPair(wmes, e.Wmes[0]) {
					count++
				}
			}
			entry.NegCount.Store(count)
			if count == 0 {
				res.Pairs++
				emit(true, wmes)
			}
			return
		}
		// Deleting a left token that had passed (count 0) retracts it.
		if entry.NegCount.Load() == 0 {
			res.Pairs++
			emit(false, wmes)
		}
		return
	}
	// Right-side activation: adjust the counts of matching left tokens.
	w := wmes[0]
	for e := line.Mem[rete.Left].Head; e != nil; e = e.Next {
		if e.Node != j || e.Side != rete.Left {
			continue
		}
		res.OppExamined++
		if !j.TestPair(e.Wmes, w) {
			continue
		}
		if sign {
			if e.NegCount.Add(1) == 1 {
				res.Pairs++
				emit(false, e.Wmes)
			}
		} else {
			if e.NegCount.Add(-1) == 0 {
				res.Pairs++
				emit(true, e.Wmes)
			}
		}
	}
}

func recordSearch(rec *Recorder, j *rete.JoinNode, side rete.Side, sign bool, res *StepResult) {
	opp := side ^ 1
	nonEmpty := rec.NodeCount[opp][j.ID] > 0
	if side == rete.Left {
		rec.M.LeftActs++
		if nonEmpty {
			rec.M.OppNonEmptyLeft++
			rec.M.OppExaminedLeft += int64(res.OppExamined)
		}
	} else {
		rec.M.RightActs++
		if nonEmpty {
			rec.M.OppNonEmptyRight++
			rec.M.OppExaminedRight += int64(res.OppExamined)
		}
	}
	rec.M.Pairs += int64(res.Pairs)
}

// RecordDelete accounts a delete's own-memory scan (Table 4-3).
func RecordDelete(rec *Recorder, side rete.Side, res *StepResult) {
	if rec == nil {
		return
	}
	if side == rete.Left {
		rec.M.DeletesLeft++
		rec.M.SameExaminedLeft += int64(res.OwnScanned)
	} else {
		rec.M.DeletesRight++
		rec.M.SameExaminedRight += int64(res.OwnScanned)
	}
}

// SizeByNode tallies the live tokens per (node, side) across the whole
// table — the introspection behind the REPL's matches command.
func (t *Table) SizeByNode(numJoins int) [][2]int {
	out := make([][2]int, numJoins)
	for i := range t.Lines {
		for s := 0; s < 2; s++ {
			for e := t.Lines[i].Mem[s].Head; e != nil; e = e.Next {
				out[e.Node.ID][s]++
			}
		}
	}
	return out
}

// CheckDrained verifies the conjugate-pair invariant: after a match
// phase completes, no parked early deletes may remain. A leftover entry
// means an add/delete pair was lost — always a matcher bug.
func (t *Table) CheckDrained() error {
	for i := range t.Lines {
		l := &t.Lines[i]
		for s := 0; s < 2; s++ {
			if l.XDel[s].Head != nil {
				e := l.XDel[s].Head
				return fmt.Errorf("line %d: unmatched early delete for node %d (%s side, token len %d)",
					i, e.Node.ID, rete.Side(s), len(e.Wmes))
			}
		}
	}
	return nil
}

// EnsureNodes grows a per-node (vs1) table so node IDs up to
// numJoins-1 have a private line, preserving existing lines. Hashed
// tables need no growth (lines are picked by token hash, not node ID);
// matchers call this when adopting a network epoch with new joins.
func (t *Table) EnsureNodes(numJoins int) {
	if t.Hashed || numJoins <= len(t.Lines) {
		return
	}
	lines := make([]Line, numJoins)
	copy(lines, t.Lines)
	t.Lines = lines
}

// EnsureNodes grows the per-node counters for a network epoch with new
// joins.
func (r *Recorder) EnsureNodes(numJoins int) {
	for s := 0; s < 2; s++ {
		if numJoins > len(r.NodeCount[s]) {
			grown := make([]int64, numJoins)
			copy(grown, r.NodeCount[s])
			r.NodeCount[s] = grown
		}
	}
}

// ExciseNodes unlinks every memory entry and parked early delete
// belonging to a dead node (keyed by node ID) and reports how many
// entries were dropped. rec, when non-nil, has the dead nodes' token
// counts zeroed. The caller must hold the table exclusively (sequential
// matchers between activations; the parallel matcher drained).
func (t *Table) ExciseNodes(dead map[int]bool, rec *Recorder) (removed int) {
	if len(dead) == 0 {
		return 0
	}
	for i := range t.Lines {
		l := &t.Lines[i]
		for s := 0; s < 2; s++ {
			removed += exciseList(&l.Mem[s], dead)
			removed += exciseList(&l.XDel[s], dead)
		}
	}
	if rec != nil {
		for id := range dead {
			for s := 0; s < 2; s++ {
				if id < len(rec.NodeCount[s]) {
					rec.NodeCount[s][id] = 0
				}
			}
		}
	}
	return removed
}

func exciseList(l *rete.EntryList, dead map[int]bool) (removed int) {
	var prev *rete.Entry
	for cur := l.Head; cur != nil; {
		next := cur.Next
		if dead[cur.Node.ID] {
			if prev == nil {
				l.Head = next
			} else {
				prev.Next = next
			}
			cur.Next = nil
			l.Len--
			removed++
		} else {
			prev = cur
		}
		cur = next
	}
	return removed
}

// ForEachOutput re-derives the historical output tokens of join j from
// its stored memories and calls fn for each: for a positive node every
// matching (left token, right WME) pair in the same line, for a negated
// node every left token whose negation count is zero. Replay uses this
// to seed newly attached successors and terminals of a pre-existing
// join with the tokens it has already emitted. Correct on hashed tables
// because both sides of a matching pair fold the same equality-test
// values into their hash and therefore share a line. The caller must
// hold the table exclusively.
func (t *Table) ForEachOutput(j *rete.JoinNode, pools *Pools, fn func(wmes []*wm.WME)) {
	lines := t.Lines
	if !t.Hashed {
		lines = t.Lines[j.ID : j.ID+1]
	}
	for i := range lines {
		l := &lines[i]
		for le := l.Mem[rete.Left].Head; le != nil; le = le.Next {
			if le.Node != j || le.Side != rete.Left {
				continue
			}
			if j.Negated {
				if le.NegCount.Load() == 0 {
					fn(le.Wmes)
				}
				continue
			}
			for re := l.Mem[rete.Right].Head; re != nil; re = re.Next {
				if re.Node != j || re.Side != rete.Right {
					continue
				}
				if !j.TestPair(le.Wmes, re.Wmes[0]) {
					continue
				}
				child := pools.MakeToken(len(le.Wmes) + 1)
				copy(child, le.Wmes)
				child[len(le.Wmes)] = re.Wmes[0]
				fn(child)
			}
		}
	}
}
