package hashmem

import (
	"repro/internal/rete"
)

// cloneMinLines floors a compacted clone's line count. Matches the
// adaptive layout's smallest useful table: enough lines to keep early
// growth off the fork's critical path without paying for the
// template's peak-sized array.
const cloneMinLines = 1024

// Clone returns an independent deep copy of the table for a forked
// session. Entry objects are copied — their negation counts diverge per
// session — while token slices and WME pointers are shared: both are
// immutable once emitted (modify is remove + add), which is what makes
// forking a structure copy instead of a re-match.
//
// Segregated (adaptive) tables compact on clone: entries are re-slotted
// into the smallest line array the adaptive growth policy would accept
// for the current live count, instead of duplicating the template's
// peak-sized array. Per-run entry order is preserved — a run's entries
// share (node, hash), so line-order iteration appends them in their
// original order — and the clone simply re-grows adaptively as its
// working memory climbs. Fixed layouts (per-node vs1, legacy list) keep
// their exact geometry; there list order is preserved so a clone's scan
// behaviour (and the LIFO delete discipline) is indistinguishable from
// the original's. The caller must hold the table quiescent (a settled
// template).
func (t *Table) Clone() *Table {
	if t.seg {
		return t.cloneCompact()
	}
	nt := &Table{
		Lines:  make([]Line, len(t.Lines)),
		mask:   t.mask,
		Hashed: t.Hashed,
		seg:    t.seg,
	}
	nt.entries.Store(t.entries.Load())
	nt.maxDepth.Store(t.maxDepth.Load())
	nt.resizes = t.resizes
	nt.rehashed = t.rehashed
	for i := range t.Lines {
		l := &t.Lines[i]
		nl := &nt.Lines[i]
		nl.used = l.used
		nl.live = l.live
		if l.runs != nil {
			nl.runs = make([]run, len(l.runs))
			for ri := range l.runs {
				r := &l.runs[ri]
				nr := &nl.runs[ri]
				nr.node, nr.hash = r.node, r.hash
				for s := 0; s < 2; s++ {
					if len(r.mem[s]) == 0 {
						continue
					}
					mem := make([]*rete.Entry, len(r.mem[s]))
					for ei, e := range r.mem[s] {
						mem[ei] = cloneEntry(e)
					}
					nr.mem[s] = mem
				}
			}
		}
		for s := 0; s < 2; s++ {
			nl.Mem[s] = cloneList(&l.Mem[s])
			nl.XDel[s] = cloneList(&l.XDel[s])
		}
	}
	return nt
}

// cloneCompact deep-copies a segregated table into a right-sized one,
// re-slotting cloned entries by their stored hash exactly as Grow does.
func (t *Table) cloneCompact() *Table {
	live := t.entries.Load()
	n := cloneMinLines
	for int64(n)*growTargetLoad < live && n < growMaxLines {
		n <<= 1
	}
	if n > len(t.Lines) {
		n = len(t.Lines)
	}
	nt := New(n)
	nt.Hashed = t.Hashed
	nt.resizes = t.resizes
	nt.rehashed = t.rehashed
	var moved, maxDepth int64
	for i := range t.Lines {
		l := &t.Lines[i]
		for ri := range l.runs {
			r := &l.runs[ri]
			if r.node == nil {
				continue
			}
			for s := 0; s < 2; s++ {
				for _, e := range r.mem[s] {
					c := cloneEntry(e)
					dl := &nt.Lines[c.Hash&nt.mask]
					dr := dl.findRun(c.Node, c.Hash, true)
					dr.mem[s] = append(dr.mem[s], c)
					dl.live++
					if int64(dl.live) > maxDepth {
						maxDepth = int64(dl.live)
					}
					moved++
				}
			}
		}
		for s := 0; s < 2; s++ {
			for e := l.XDel[s].Head; e != nil; e = e.Next {
				nt.Lines[e.Hash&nt.mask].XDel[s].Push(cloneEntry(e))
			}
		}
	}
	nt.entries.Store(moved)
	nt.maxDepth.Store(maxDepth)
	return nt
}

func cloneEntry(e *rete.Entry) *rete.Entry {
	c := &rete.Entry{Node: e.Node, Side: e.Side, Hash: e.Hash, Wmes: e.Wmes}
	c.NegCount.Store(e.NegCount.Load())
	return c
}

// cloneList copies a linked entry list preserving order (Push prepends,
// so entries are appended tail-first from a collected slice).
func cloneList(l *rete.EntryList) rete.EntryList {
	if l.Head == nil {
		return rete.EntryList{}
	}
	var entries []*rete.Entry
	for e := l.Head; e != nil; e = e.Next {
		entries = append(entries, e)
	}
	var out rete.EntryList
	for i := len(entries) - 1; i >= 0; i-- {
		out.Push(cloneEntry(entries[i]))
	}
	return out
}
