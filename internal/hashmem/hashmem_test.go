package hashmem_test

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/hashmem"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/symbols"
	"repro/internal/wm"
)

// fixture compiles a small join so tests have a real node to work with.
func fixture(t *testing.T, src string) *rete.Network {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return net
}

const joinSrc = `(p r (a ^x <v>) (b ^y <v>) --> (halt))`
const notSrc = `(p r (a ^x <v>) - (b ^y <v>) --> (halt))`

func mkW(class uint32, tag int, vals ...int64) *wm.WME {
	fs := []wm.Value{wm.Sym(symbols.ID(class))}
	for _, v := range vals {
		fs = append(fs, wm.Int(v))
	}
	return &wm.WME{TimeTag: tag, Fields: fs}
}

// layouts returns one table per storage layout so every behavioural test
// runs against both the node-segregated default and the legacy
// linked-list reference.
func layouts(nLines int) map[string]*hashmem.Table {
	return map[string]*hashmem.Table{
		"segregated": hashmem.New(nLines),
		"legacy":     hashmem.NewLegacy(nLines),
	}
}

// apply performs one activation against a table, returning emitted
// (sign, len) pairs.
func apply(table *hashmem.Table, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME) []string {
	var out []string
	var hash uint64
	if side == rete.Left {
		hash = j.LeftHash(wmes)
	} else {
		hash = j.RightHash(wmes[0])
	}
	idx := table.LineIndex(j, hash)
	entry, ref, res := table.UpdateOwn(idx, j, side, sign, wmes, hash, nil, nil)
	if !res.Proceeded {
		return out
	}
	table.SearchOpposite(idx, ref, j, side, sign, wmes, entry, nil, nil, func(s bool, w []*wm.WME) {
		tag := "+"
		if !s {
			tag = "-"
		}
		out = append(out, fmt.Sprintf("%s%d", tag, len(w)))
	})
	return out
}

func TestJoinEmitsPairs(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	for name, table := range layouts(4) {
		lw := mkW(1, 1, 5)
		rw := mkW(2, 2, 5)
		if got := apply(table, j, rete.Left, true, []*wm.WME{lw}); len(got) != 0 {
			t.Fatalf("%s: left with empty right emitted %v", name, got)
		}
		got := apply(table, j, rete.Right, true, []*wm.WME{rw})
		if len(got) != 1 || got[0] != "+2" {
			t.Fatalf("%s: right emitted %v, want [+2]", name, got)
		}
		// Deleting the left token retracts the pair.
		got = apply(table, j, rete.Left, false, []*wm.WME{lw})
		if len(got) != 1 || got[0] != "-2" {
			t.Fatalf("%s: left delete emitted %v, want [-2]", name, got)
		}
	}
}

func TestJoinRespectsTests(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	for name, table := range layouts(4) {
		apply(table, j, rete.Left, true, []*wm.WME{mkW(1, 1, 5)})
		if got := apply(table, j, rete.Right, true, []*wm.WME{mkW(2, 2, 6)}); len(got) != 0 {
			t.Fatalf("%s: mismatched values joined: %v", name, got)
		}
	}
}

// TestConjugateOrderings drives every interleaving of {+X, -X} pairs
// through one table and verifies the final memory is empty and no parked
// deletes remain — the invariant the parallel matchers rely on.
func TestConjugateOrderings(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	w := mkW(1, 1, 5)
	token := []*wm.WME{w}
	// Every multiset with equal + and - counts must drain, whatever the
	// processing order.
	seqs := [][]bool{
		{true, false},
		{false, true},
		{true, true, false, false},
		{true, false, true, false},
		{false, true, true, false},
		{false, false, true, true},
		{false, true, false, true},
		{true, false, false, true},
	}
	for i, seq := range seqs {
		for name, table := range layouts(4) {
			for _, sign := range seq {
				apply(table, j, rete.Left, sign, token)
			}
			if err := table.CheckDrained(); err != nil {
				t.Errorf("%s: sequence %d (%v): %v", name, i, seq, err)
			}
			if n := table.MemStats().Entries; n != 0 {
				t.Errorf("%s: sequence %d (%v): %d tokens left in memory", name, i, seq, n)
			}
		}
	}
}

func TestEarlyDeleteParksWithoutPropagating(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	for name, table := range layouts(4) {
		// A right WME is present, so a left delete *would* emit if processed.
		apply(table, j, rete.Right, true, []*wm.WME{mkW(2, 2, 5)})
		lw := []*wm.WME{mkW(1, 1, 5)}
		if got := apply(table, j, rete.Left, false, lw); len(got) != 0 {
			t.Fatalf("%s: early delete propagated: %v", name, got)
		}
		if err := table.CheckDrained(); err == nil {
			t.Fatalf("%s: parked delete not reported by CheckDrained", name)
		}
		// The matching add annihilates silently.
		if got := apply(table, j, rete.Left, true, lw); len(got) != 0 {
			t.Fatalf("%s: annihilating add propagated: %v", name, got)
		}
		if err := table.CheckDrained(); err != nil {
			t.Fatalf("%s: extra-deletes list not drained: %v", name, err)
		}
	}
}

func TestNegationCounts(t *testing.T) {
	net := fixture(t, notSrc)
	j := net.Joins[0]
	if !j.Negated {
		t.Fatal("fixture join should be negated")
	}
	for name, table := range layouts(4) {
		lw := []*wm.WME{mkW(1, 1, 5)}
		// Left token with no blockers passes through.
		if got := apply(table, j, rete.Left, true, lw); len(got) != 1 || got[0] != "+1" {
			t.Fatalf("%s: unblocked left emitted %v, want [+1]", name, got)
		}
		// A matching right WME retracts it.
		rw := []*wm.WME{mkW(2, 2, 5)}
		if got := apply(table, j, rete.Right, true, rw); len(got) != 1 || got[0] != "-1" {
			t.Fatalf("%s: blocker emitted %v, want [-1]", name, got)
		}
		// A second identical blocker changes nothing downstream.
		rw2 := []*wm.WME{mkW(2, 3, 5)}
		if got := apply(table, j, rete.Right, true, rw2); len(got) != 0 {
			t.Fatalf("%s: second blocker emitted %v", name, got)
		}
		// Removing one blocker: still blocked.
		if got := apply(table, j, rete.Right, false, rw); len(got) != 0 {
			t.Fatalf("%s: first unblock emitted %v", name, got)
		}
		// Removing the last blocker re-asserts the token.
		if got := apply(table, j, rete.Right, false, rw2); len(got) != 1 || got[0] != "+1" {
			t.Fatalf("%s: final unblock emitted %v, want [+1]", name, got)
		}
		// Deleting the passed left token retracts it.
		if got := apply(table, j, rete.Left, false, lw); len(got) != 1 || got[0] != "-1" {
			t.Fatalf("%s: left delete emitted %v, want [-1]", name, got)
		}
	}
}

func TestNegationNonMatchingBlockerIgnored(t *testing.T) {
	net := fixture(t, notSrc)
	j := net.Joins[0]
	for name, table := range layouts(4) {
		lw := []*wm.WME{mkW(1, 1, 5)}
		apply(table, j, rete.Left, true, lw)
		// Blocker with a different join value must not affect the token.
		if got := apply(table, j, rete.Right, true, []*wm.WME{mkW(2, 2, 7)}); len(got) != 0 {
			t.Fatalf("%s: non-matching blocker emitted %v", name, got)
		}
	}
}

func TestVS1PerNodeTable(t *testing.T) {
	net := fixture(t, joinSrc)
	table := hashmem.NewPerNode(len(net.Joins))
	j := net.Joins[0]
	if table.Hashed {
		t.Fatal("per-node table must not hash")
	}
	if table.Segregated() {
		t.Fatal("per-node table must not segregate")
	}
	if idx := table.LineIndex(j, 12345); idx != j.ID {
		t.Fatalf("LineIndex = %d, want node ID %d", idx, j.ID)
	}
}

func TestRecorderNodeCounts(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	for name, table := range layouts(4) {
		rec := hashmem.NewRecorder(len(net.Joins))
		w := []*wm.WME{mkW(1, 1, 5)}
		hash := j.LeftHash(w)
		idx := table.LineIndex(j, hash)
		table.UpdateOwn(idx, j, rete.Left, true, w, hash, rec, nil)
		if rec.NodeCount[rete.Left][j.ID] != 1 {
			t.Fatalf("%s: count after insert = %d", name, rec.NodeCount[rete.Left][j.ID])
		}
		table.UpdateOwn(idx, j, rete.Left, false, w, hash, rec, nil)
		if rec.NodeCount[rete.Left][j.ID] != 0 {
			t.Fatalf("%s: count after delete = %d", name, rec.NodeCount[rete.Left][j.ID])
		}
	}
}

// TestGrowTargetPolicy pins the adaptive-growth policy: segregated
// tables ask to grow once the mean line depth passes the lazy trigger
// and size to the smallest power of two bringing the mean back to the
// target load; list layouts never grow.
func TestGrowTargetPolicy(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	seg := hashmem.New(1)
	leg := hashmem.NewLegacy(1)
	for i := 0; i < 20; i++ {
		tok := []*wm.WME{mkW(1, i+1, int64(i))}
		apply(seg, j, rete.Left, true, tok)
		apply(leg, j, rete.Left, true, tok)
	}
	// 20 live in 1 line exceeds the trigger (load 16); the target is the
	// smallest power of two whose mean load is back at 4: 8 lines.
	if n := seg.GrowTarget(); n != 8 {
		t.Errorf("segregated GrowTarget = %d, want 8 (smallest pow2 with load <= 4 for 20 live)", n)
	}
	if n := leg.GrowTarget(); n != 0 {
		t.Errorf("legacy GrowTarget = %d, want 0 (fixed layout)", n)
	}
	if n := hashmem.NewPerNode(len(net.Joins)).GrowTarget(); n != 0 {
		t.Errorf("per-node GrowTarget = %d, want 0", n)
	}
	if n := hashmem.New(64).GrowTarget(); n != 0 {
		t.Errorf("empty table GrowTarget = %d, want 0", n)
	}
}

// TestGrowPreservesNegationCounts grows a table holding a blocked left
// token and verifies the blocker count survives: Grow moves entry
// objects rather than copying them, so the NegCount identity a later
// unblock depends on stays intact.
func TestGrowPreservesNegationCounts(t *testing.T) {
	net := fixture(t, notSrc)
	j := net.Joins[0]
	table := hashmem.New(1)
	lw := []*wm.WME{mkW(1, 1, 5)}
	rw := []*wm.WME{mkW(2, 2, 5)}
	if got := apply(table, j, rete.Left, true, lw); len(got) != 1 || got[0] != "+1" {
		t.Fatalf("left add emitted %v", got)
	}
	if got := apply(table, j, rete.Right, true, rw); len(got) != 1 || got[0] != "-1" {
		t.Fatalf("blocker emitted %v", got)
	}
	// Pad until the load factor trips, then grow.
	for i := 0; i < 20; i++ {
		apply(table, j, rete.Left, true, []*wm.WME{mkW(1, 100+i, int64(50+i))})
	}
	n := table.GrowTarget()
	if n == 0 {
		t.Fatal("table did not reach its growth trigger")
	}
	table = table.Grow(n)
	if got := table.MemStats(); got.Resizes != 1 || got.Lines != int64(n) {
		t.Fatalf("post-grow stats = %+v, want resizes 1, lines %d", got, n)
	}
	// The unblock must find the moved entry's count and re-assert.
	if got := apply(table, j, rete.Right, false, rw); len(got) != 1 || got[0] != "+1" {
		t.Fatalf("unblock after grow emitted %v, want [+1]", got)
	}
}

// TestGrowRehashesParkedDeletes parks an early delete, grows the table,
// and verifies the conjugate add still annihilates: Grow re-slots the
// extra-deletes lists by stored hash along with the live entries.
func TestGrowRehashesParkedDeletes(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	table := hashmem.New(1)
	lw := []*wm.WME{mkW(1, 1, 5)}
	if got := apply(table, j, rete.Left, false, lw); len(got) != 0 {
		t.Fatalf("early delete propagated: %v", got)
	}
	for i := 0; i < 20; i++ {
		apply(table, j, rete.Left, true, []*wm.WME{mkW(1, 100+i, int64(50+i))})
	}
	n := table.GrowTarget()
	if n == 0 {
		t.Fatal("table did not reach its growth trigger")
	}
	table = table.Grow(n)
	if err := table.CheckDrained(); err == nil {
		t.Fatal("parked delete lost by Grow")
	}
	if got := apply(table, j, rete.Left, true, lw); len(got) != 0 {
		t.Fatalf("annihilating add after grow propagated: %v", got)
	}
	if err := table.CheckDrained(); err != nil {
		t.Fatalf("extra-deletes not drained after annihilation: %v", err)
	}
}

// emitKey renders one emission as sign plus the token's time tags, an
// order-independent identity for differential comparison.
func emitKey(sign bool, wmes []*wm.WME) string {
	s := "+"
	if !sign {
		s = "-"
	}
	for _, w := range wmes {
		s += fmt.Sprintf(",%d", w.TimeTag)
	}
	return s
}

// TestStormDifferentialAcrossResize runs a randomized conjugate-balanced
// insert/remove/early-delete storm through the segregated layout — with
// adaptive growth firing mid-stream, including while deletes are parked —
// and through the fixed legacy layout, and requires identical emission
// multisets, drained extra-deletes and empty final memories.
func TestStormDifferentialAcrossResize(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	rng := rand.New(rand.NewSource(7))

	type ev struct {
		side rete.Side
		sign bool
		tok  []*wm.WME
	}
	var events []ev
	tag := 1
	const pairs = 400
	for i := 0; i < pairs; i++ {
		v := int64(rng.Intn(8)) // few distinct join values => real cross matches
		var side rete.Side
		var tok []*wm.WME
		if rng.Intn(2) == 0 {
			side, tok = rete.Left, []*wm.WME{mkW(1, tag, v)}
		} else {
			side, tok = rete.Right, []*wm.WME{mkW(2, tag, v)}
		}
		tag++
		// A full shuffle of conjugate pairs yields plenty of
		// minus-before-plus orderings, exercising the parking protocol.
		events = append(events, ev{side, true, tok}, ev{side, false, tok})
	}
	rng.Shuffle(len(events), func(a, b int) { events[a], events[b] = events[b], events[a] })

	run := func(table *hashmem.Table, grow bool) ([]string, *hashmem.Table) {
		var got []string
		for _, e := range events {
			var hash uint64
			if e.side == rete.Left {
				hash = j.LeftHash(e.tok)
			} else {
				hash = j.RightHash(e.tok[0])
			}
			idx := table.LineIndex(j, hash)
			entry, ref, res := table.UpdateOwn(idx, j, e.side, e.sign, e.tok, hash, nil, nil)
			if res.Proceeded {
				table.SearchOpposite(idx, ref, j, e.side, e.sign, e.tok, entry, nil, nil,
					func(s bool, w []*wm.WME) { got = append(got, emitKey(s, w)) })
			}
			if grow {
				if n := table.GrowTarget(); n > 0 {
					table = table.Grow(n)
				}
			}
		}
		sort.Strings(got)
		return got, table
	}

	segGot, seg := run(hashmem.New(1), true)
	legGot, leg := run(hashmem.NewLegacy(64), false)

	if len(segGot) != len(legGot) {
		t.Fatalf("emission counts differ: segregated %d, legacy %d", len(segGot), len(legGot))
	}
	for i := range segGot {
		if segGot[i] != legGot[i] {
			t.Fatalf("emission %d differs: segregated %q, legacy %q", i, segGot[i], legGot[i])
		}
	}
	if len(segGot) == 0 {
		t.Fatal("storm produced no emissions; workload too sparse to mean anything")
	}
	for name, table := range map[string]*hashmem.Table{"segregated": seg, "legacy": leg} {
		if err := table.CheckDrained(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if n := table.MemStats().Entries; n != 0 {
			t.Errorf("%s: %d tokens left in memory", name, n)
		}
	}
	ms := seg.MemStats()
	if ms.Resizes == 0 || ms.Lines == 1 {
		t.Errorf("storm never grew the table (resizes %d, lines %d); raise the pair count", ms.Resizes, ms.Lines)
	}
}
