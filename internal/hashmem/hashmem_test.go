package hashmem_test

import (
	"fmt"
	"testing"

	"repro/internal/hashmem"
	"repro/internal/ops5"
	"repro/internal/rete"
	"repro/internal/symbols"
	"repro/internal/wm"
)

// fixture compiles a small join so tests have a real node to work with.
func fixture(t *testing.T, src string) *rete.Network {
	t.Helper()
	prog, err := ops5.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return net
}

const joinSrc = `(p r (a ^x <v>) (b ^y <v>) --> (halt))`
const notSrc = `(p r (a ^x <v>) - (b ^y <v>) --> (halt))`

func mkW(class uint32, tag int, vals ...int64) *wm.WME {
	fs := []wm.Value{wm.Sym(symbols.ID(class))}
	for _, v := range vals {
		fs = append(fs, wm.Int(v))
	}
	return &wm.WME{TimeTag: tag, Fields: fs}
}

// apply performs one activation against a single line, returning emitted
// (sign, len) pairs.
func apply(line *hashmem.Line, j *rete.JoinNode, side rete.Side, sign bool, wmes []*wm.WME) []string {
	var out []string
	var hash uint64
	if side == rete.Left {
		hash = j.LeftHash(wmes)
	} else {
		hash = j.RightHash(wmes[0])
	}
	entry, res := hashmem.UpdateOwn(line, j, side, sign, wmes, hash, nil, nil)
	if !res.Proceeded {
		return out
	}
	hashmem.SearchOpposite(line, j, side, sign, wmes, entry, nil, nil, func(s bool, w []*wm.WME) {
		tag := "+"
		if !s {
			tag = "-"
		}
		out = append(out, fmt.Sprintf("%s%d", tag, len(w)))
	})
	return out
}

func TestJoinEmitsPairs(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	var line hashmem.Line
	lw := mkW(1, 1, 5)
	rw := mkW(2, 2, 5)
	if got := apply(&line, j, rete.Left, true, []*wm.WME{lw}); len(got) != 0 {
		t.Fatalf("left with empty right emitted %v", got)
	}
	got := apply(&line, j, rete.Right, true, []*wm.WME{rw})
	if len(got) != 1 || got[0] != "+2" {
		t.Fatalf("right emitted %v, want [+2]", got)
	}
	// Deleting the left token retracts the pair.
	got = apply(&line, j, rete.Left, false, []*wm.WME{lw})
	if len(got) != 1 || got[0] != "-2" {
		t.Fatalf("left delete emitted %v, want [-2]", got)
	}
}

func TestJoinRespectsTests(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	var line hashmem.Line
	apply(&line, j, rete.Left, true, []*wm.WME{mkW(1, 1, 5)})
	if got := apply(&line, j, rete.Right, true, []*wm.WME{mkW(2, 2, 6)}); len(got) != 0 {
		t.Fatalf("mismatched values joined: %v", got)
	}
}

// TestConjugateOrderings drives every interleaving of {+X, -X} pairs
// through one line and verifies the final memory is empty and no parked
// deletes remain — the invariant the parallel matchers rely on.
func TestConjugateOrderings(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	w := mkW(1, 1, 5)
	token := []*wm.WME{w}
	// Signed sequences that are prefix-balanced in generation order but
	// processed in arbitrary order here: every multiset with equal + and
	// - counts must drain.
	seqs := [][]bool{
		{true, false},
		{false, true},
		{true, true, false, false},
		{true, false, true, false},
		{false, true, true, false},
		{false, false, true, true},
		{false, true, false, true},
		{true, false, false, true},
	}
	for i, seq := range seqs {
		var table hashmem.Table
		table = *hashmem.New(4)
		for _, sign := range seq {
			hash := j.LeftHash(token)
			idx := table.LineIndex(j, hash)
			entry, res := hashmem.UpdateOwn(&table.Lines[idx], j, rete.Left, sign, token, hash, nil, nil)
			if res.Proceeded {
				hashmem.SearchOpposite(&table.Lines[idx], j, rete.Left, sign, token, entry, nil, nil,
					func(bool, []*wm.WME) {})
			}
		}
		if err := table.CheckDrained(); err != nil {
			t.Errorf("sequence %d (%v): %v", i, seq, err)
		}
		idx := table.LineIndex(j, j.LeftHash(token))
		if n := table.Lines[idx].Mem[rete.Left].Len; n != 0 {
			t.Errorf("sequence %d (%v): %d tokens left in memory", i, seq, n)
		}
	}
}

func TestEarlyDeleteParksWithoutPropagating(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	var line hashmem.Line
	// A right WME is present, so a left delete *would* emit if processed.
	apply(&line, j, rete.Right, true, []*wm.WME{mkW(2, 2, 5)})
	lw := []*wm.WME{mkW(1, 1, 5)}
	if got := apply(&line, j, rete.Left, false, lw); len(got) != 0 {
		t.Fatalf("early delete propagated: %v", got)
	}
	// The matching add annihilates silently.
	if got := apply(&line, j, rete.Left, true, lw); len(got) != 0 {
		t.Fatalf("annihilating add propagated: %v", got)
	}
	if line.XDel[rete.Left].Len != 0 {
		t.Fatal("extra-deletes list not drained")
	}
}

func TestNegationCounts(t *testing.T) {
	net := fixture(t, notSrc)
	j := net.Joins[0]
	if !j.Negated {
		t.Fatal("fixture join should be negated")
	}
	var line hashmem.Line
	lw := []*wm.WME{mkW(1, 1, 5)}
	// Left token with no blockers passes through.
	if got := apply(&line, j, rete.Left, true, lw); len(got) != 1 || got[0] != "+1" {
		t.Fatalf("unblocked left emitted %v, want [+1]", got)
	}
	// A matching right WME retracts it.
	rw := []*wm.WME{mkW(2, 2, 5)}
	if got := apply(&line, j, rete.Right, true, rw); len(got) != 1 || got[0] != "-1" {
		t.Fatalf("blocker emitted %v, want [-1]", got)
	}
	// A second identical blocker changes nothing downstream.
	rw2 := []*wm.WME{mkW(2, 3, 5)}
	if got := apply(&line, j, rete.Right, true, rw2); len(got) != 0 {
		t.Fatalf("second blocker emitted %v", got)
	}
	// Removing one blocker: still blocked.
	if got := apply(&line, j, rete.Right, false, rw); len(got) != 0 {
		t.Fatalf("first unblock emitted %v", got)
	}
	// Removing the last blocker re-asserts the token.
	if got := apply(&line, j, rete.Right, false, rw2); len(got) != 1 || got[0] != "+1" {
		t.Fatalf("final unblock emitted %v, want [+1]", got)
	}
	// Deleting the passed left token retracts it.
	if got := apply(&line, j, rete.Left, false, lw); len(got) != 1 || got[0] != "-1" {
		t.Fatalf("left delete emitted %v, want [-1]", got)
	}
}

func TestNegationNonMatchingBlockerIgnored(t *testing.T) {
	net := fixture(t, notSrc)
	j := net.Joins[0]
	var line hashmem.Line
	lw := []*wm.WME{mkW(1, 1, 5)}
	apply(&line, j, rete.Left, true, lw)
	// Blocker with a different join value must not affect the token.
	if got := apply(&line, j, rete.Right, true, []*wm.WME{mkW(2, 2, 7)}); len(got) != 0 {
		t.Fatalf("non-matching blocker emitted %v", got)
	}
}

func TestVS1PerNodeTable(t *testing.T) {
	net := fixture(t, joinSrc)
	table := hashmem.NewPerNode(len(net.Joins))
	j := net.Joins[0]
	if table.Hashed {
		t.Fatal("per-node table must not hash")
	}
	if idx := table.LineIndex(j, 12345); idx != j.ID {
		t.Fatalf("LineIndex = %d, want node ID %d", idx, j.ID)
	}
}

func TestRecorderNodeCounts(t *testing.T) {
	net := fixture(t, joinSrc)
	j := net.Joins[0]
	rec := hashmem.NewRecorder(len(net.Joins))
	var line hashmem.Line
	w := []*wm.WME{mkW(1, 1, 5)}
	hash := j.LeftHash(w)
	hashmem.UpdateOwn(&line, j, rete.Left, true, w, hash, rec, nil)
	if rec.NodeCount[rete.Left][j.ID] != 1 {
		t.Fatalf("count after insert = %d", rec.NodeCount[rete.Left][j.ID])
	}
	hashmem.UpdateOwn(&line, j, rete.Left, false, w, hash, rec, nil)
	if rec.NodeCount[rete.Left][j.ID] != 0 {
		t.Fatalf("count after delete = %d", rec.NodeCount[rete.Left][j.ID])
	}
}
