package psme_test

import (
	"strings"
	"testing"

	psme "repro"
)

const facadeSrc = `
(literalize goal type color)
(literalize block id color selected)
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
-->
  (modify 2 ^selected yes))
(p all-done
  (goal ^type find-block ^color <c>)
  - (block ^color <c> ^selected no)
-->
  (write done (crlf))
  (halt))
(make goal ^type find-block ^color red)
(make block ^id b1 ^color red ^selected no)
(make block ^id b2 ^color red ^selected no)
`

func TestFacadeAllMatchers(t *testing.T) {
	kinds := []psme.MatcherKind{psme.MatcherVS1, psme.MatcherVS2, psme.MatcherLisp, psme.MatcherParallel}
	for _, k := range kinds {
		k := k
		t.Run(k.String(), func(t *testing.T) {
			prog, err := psme.Parse(facadeSrc)
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			eng, err := psme.New(prog, psme.Config{
				Matcher: k, MatchProcs: 3, TaskQueues: 2, Output: &out,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			res, err := eng.Run(psme.RunOptions{MaxCycles: 100, RecordFiring: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted || res.Cycles != 3 {
				t.Fatalf("halted=%v cycles=%d, want true/3", res.Halted, res.Cycles)
			}
			if !strings.Contains(out.String(), "done") {
				t.Fatalf("output %q", out.String())
			}
			found := 0
			for _, w := range eng.WorkingMemory() {
				if strings.Contains(w, "^selected yes") {
					found++
				}
			}
			if found != 2 {
				t.Fatalf("%d selected blocks in WM, want 2", found)
			}
		})
	}
}

func TestFacadeNetworkIntrospection(t *testing.T) {
	prog, err := psme.Parse(facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Rules() != 2 {
		t.Fatalf("Rules = %d", prog.Rules())
	}
	var dump strings.Builder
	prog.DumpNetwork(&dump)
	if !strings.Contains(dump.String(), "find-colored-block") {
		t.Fatal("network dump missing production name")
	}
	s := prog.NetworkSummary()
	if s.Rules != 2 || s.Terminals != 2 {
		t.Fatalf("summary %+v", s)
	}
}

func TestFacadeSimulate(t *testing.T) {
	src, err := psme.BenchmarkProgram("tourney", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := psme.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	base, err := psme.Simulate(prog, psme.SimConfig{MatchProcs: 1, TaskQueues: 1, MaxCycles: 50000})
	if err != nil {
		t.Fatal(err)
	}
	par, err := psme.Simulate(prog, psme.SimConfig{
		MatchProcs: 8, TaskQueues: 8, Pipelined: true, MaxCycles: 50000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !base.Halted || !par.Halted {
		t.Fatal("simulated runs must halt")
	}
	if par.MatchSeconds >= base.MatchSeconds {
		t.Fatalf("8 procs (%f s) not faster than 1 (%f s)", par.MatchSeconds, base.MatchSeconds)
	}
}

func TestFacadeBenchmarkPrograms(t *testing.T) {
	for _, name := range []string{"weaver", "rubik", "tourney", "monkeys"} {
		src, err := psme.BenchmarkProgram(name, 0.3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := psme.Parse(src); err != nil {
			t.Fatalf("%s does not parse: %v", name, err)
		}
	}
	if _, err := psme.BenchmarkProgram("nonesuch", 1); err == nil {
		t.Fatal("unknown program should error")
	}
}

func TestFacadeAcceptValues(t *testing.T) {
	src := `
(literalize t go)
(literalize got v)
(p read (t ^go yes) --> (make got ^v (accept)) (halt))
(make t ^go yes)
`
	prog, err := psme.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := psme.New(prog, psme.Config{
		Matcher:      psme.MatcherVS2,
		AcceptValues: []psme.Value{{Sym: "token-a"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()
	if _, err := eng.Run(psme.RunOptions{MaxCycles: 5}); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(eng.WorkingMemory(), " ")
	if !strings.Contains(joined, "token-a") {
		t.Fatalf("accept value not in WM: %s", joined)
	}
}

func TestFacadeParseError(t *testing.T) {
	if _, err := psme.Parse("(p broken"); err == nil {
		t.Fatal("expected parse error")
	}
}
