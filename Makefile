# Developer entry points. `make check` is the tier-1 gate: everything a
# change must keep green.

GO ?= go

.PHONY: all build test race vet check bench bench-smoke recovery act-differential reorder-differential fuzz-smoke cluster-smoke clean

all: build

# Compile every package and the two binaries into ./bin.
build:
	$(GO) build ./...
	$(GO) build -o bin/ops5run ./cmd/ops5run
	$(GO) build -o bin/ops5d ./cmd/ops5d
	$(GO) build -o bin/ops5proxy ./cmd/ops5proxy
	$(GO) build -o bin/psmbench ./cmd/psmbench

test:
	$(GO) test ./...

# Race-detect the concurrent subsystems: the inference server (which
# includes the crash-recovery differential suite), the parallel
# matcher, the sharded conflict set, the work-stealing task queues, and
# runtime build/excise epoch swaps (engine dynamic tests).
race:
	$(GO) test -race ./internal/server ./internal/parmatch ./internal/conflict ./internal/taskqueue ./internal/engine

# The durability suite on its own: kill-and-recover differential
# (WM + timetags + firing trace vs an uninterrupted control, across
# backends, including a speculative multi-fire victim), torn-tail
# truncation, template-fork isolation and the quarantine fd release,
# under the race detector.
recovery:
	$(GO) test -race -run 'TestCrashRecoveryDifferential|TestCrashRecoveryMultiFire|TestRecoveryTornTail|TestForkIsolation|TestQuarantine' -v ./internal/server
	$(GO) test -race ./internal/wmlog

# The multi-fire equivalence suite on its own: FireBatch 1 vs {2,4,8}
# must produce identical WM, timetags, and firing traces on every
# matcher backend, including the rollback-heavy adversarial kernel.
act-differential:
	$(GO) test -race -run 'TestFireBatch' -v ./internal/engine

# The join-order equivalence suite: every workload compiled with the
# cost-based reorderer on vs off must produce identical WM, timetags
# and firing traces on vs1/vs2/parallel, with and without beta
# unlinking, under the race detector.
reorder-differential:
	$(GO) test -race -run 'TestReorderDifferential' -v ./internal/tables

vet:
	$(GO) vet ./...

check: build vet test race bench-smoke reorder-differential fuzz-smoke cluster-smoke

# The cluster fabric suite under the race detector: two in-process
# backends behind the routing proxy — consistent-hash placement, the
# content-addressed program cache (one push per backend, hash-only
# creates after), backend-loss re-routing, and the migrate-under-load
# differential (a session migrated mid-run must end with the same WM
# and firing trace as one that never moved, on every matcher backend,
# with pending (accept) input intact).
cluster-smoke:
	$(GO) test -race -run 'TestRing|TestCluster|TestProgramCache|TestCreateByUnregisteredHash|TestBackendLoss|TestMigrate|TestExportRefuses|TestProxyMetrics' -v ./internal/cluster
	$(GO) test -race -run 'TestConcurrentSessionLifecycle|TestSnapshotFormat' ./internal/server ./internal/wmlog

# Cross-backend differential fuzzing: replay the deterministic 60-seed
# corpus (vector attributes, negations, accepts) across all four
# matcher backends under the race detector, then let the go-native
# fuzzer mutate seeds for a few seconds.
fuzz-smoke:
	$(GO) test -race -run 'TestCorpusDifferential' -v ./internal/fuzz
	$(GO) test -fuzz FuzzDifferential -fuzztime 5s -run '^$$' ./internal/fuzz

# 1-rep match-kernel + conflict-set sweep plus the fork-vs-cold
# session-spawn ratio, failing on regression against the checked-in
# BENCH_baseline.json (scaling ratios and allocs/op — host-independent
# invariants, not wall-clock). Regenerate the baseline after an
# intentional change with:
#   BENCH_SMOKE=update $(GO) test -run TestBenchSmoke ./internal/tables
bench-smoke:
	BENCH_SMOKE=1 $(GO) test -run TestBenchSmoke -v ./internal/tables

# Refresh BENCH_server.json and print the server throughput benchmark.
bench:
	$(GO) test -run TestBenchServerJSON -v ./internal/server
	$(GO) test -bench ServerThroughput -benchtime 3x -run '^$$' ./internal/server

clean:
	rm -rf bin
