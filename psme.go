// Package psme is a Go implementation of PSM-E — the parallel OPS5
// production-system interpreter of "Parallel OPS5 on the Encore
// Multimax" (Gupta, Forgy, Kalp, Newell, Tambe; ICPP 1988).
//
// It provides:
//
//   - an OPS5 front end (literalize declarations, productions with
//     negated condition elements, predicates, conjunctive and
//     disjunctive tests; make/modify/remove/bind/compute/write/halt),
//   - a compiled Rete network with constant-test and join-prefix sharing,
//   - four matcher backends: the optimized sequential matchers vs1
//     (list memories) and vs2 (global token hash tables), an interpreted
//     Lisp-style baseline, and the parallel matcher (one control process
//     plus k match goroutines, task queues, per-line locks, conjugate
//     token pairs),
//   - LEX and MEA conflict resolution with refraction, and
//   - a deterministic discrete-event simulator of the 16-CPU Encore
//     Multimax that reproduces the paper's speed-up and lock-contention
//     tables on any host.
//
// Quick start:
//
//	prog, err := psme.Parse(src)
//	eng, err := psme.New(prog, psme.Config{Matcher: psme.MatcherParallel, MatchProcs: 4})
//	defer eng.Close()
//	res, err := eng.Run(psme.RunOptions{MaxCycles: 10000})
package psme

import (
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/conflict"
	"repro/internal/engine"
	"repro/internal/lispemu"
	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/stats"
	"repro/internal/wm"
	"repro/internal/workload"
)

// MatcherKind selects the match backend.
type MatcherKind int

// Matcher backends.
const (
	// MatcherVS2 is the optimized sequential matcher with the two global
	// token hash tables (the paper's best uniprocessor version).
	MatcherVS2 MatcherKind = iota
	// MatcherVS1 is the sequential matcher with per-node list memories.
	MatcherVS1
	// MatcherLisp is the interpreted baseline standing in for the Franz
	// Lisp OPS5 (10-20x slower than VS2).
	MatcherLisp
	// MatcherParallel is PSM-E proper: k match goroutines sharing one
	// Rete network through task queues and per-line locks.
	MatcherParallel
)

func (k MatcherKind) String() string {
	switch k {
	case MatcherVS1:
		return "vs1"
	case MatcherVS2:
		return "vs2"
	case MatcherLisp:
		return "lisp"
	case MatcherParallel:
		return "parallel"
	}
	return "unknown"
}

// LockScheme selects the hash-line locking discipline of the parallel
// matcher.
type LockScheme = parmatch.Scheme

// Line-lock schemes (§3.2 of the paper).
const (
	LockSimple = parmatch.SchemeSimple
	LockMRSW   = parmatch.SchemeMRSW
)

// Program is a parsed and Rete-compiled OPS5 program.
type Program struct {
	prog *ops5.Program
	// net is the default network: joins ordered by the cost-based
	// planner (rete.PlanOrder). netSrc is the same program compiled in
	// source condition-element order — the differential baseline engines
	// get under Config.ReorderJoins = ReorderOff. Both are compiled
	// eagerly so either can serve engines after the program freezes.
	net    *rete.Network
	netSrc *rete.Network
}

// Parse parses OPS5 source and compiles its Rete network. Joins are
// ordered by the compile-time cost planner; Config.ReorderJoins
// selects the source-order compile instead, per engine.
func Parse(src string) (*Program, error) {
	prog, err := ops5.Parse(src)
	if err != nil {
		return nil, err
	}
	net, err := rete.CompileWithPlan(prog, rete.PlanConfig{Reorder: true})
	if err != nil {
		return nil, err
	}
	netSrc, err := rete.Compile(prog)
	if err != nil {
		return nil, err
	}
	return &Program{prog: prog, net: net, netSrc: netSrc}, nil
}

// Rules reports the number of productions.
func (p *Program) Rules() int { return len(p.prog.Rules) }

// DumpNetwork writes a rendering of the Rete network (the textual
// counterpart of the paper's Figure 2-2).
func (p *Program) DumpNetwork(w io.Writer) { p.net.Dump(w) }

// NetworkSummary returns network-size statistics.
func (p *Program) NetworkSummary() rete.NetStats { return p.net.Summarize() }

// Config configures an engine.
type Config struct {
	Matcher MatcherKind
	// MatchProcs is the number of match goroutines for MatcherParallel
	// (the k of the paper's "1+k"; default 4).
	MatchProcs int
	// TaskQueues is the number of task queues (default 1; the paper
	// found 8 essential for speed-up at high process counts).
	TaskQueues int
	// HashLines sizes the token hash tables (default 16384 lines).
	HashLines int
	// CSShards is the number of conflict-set lock stripes, rounded up
	// to a power of two (default conflict.DefaultShards).
	CSShards int
	// Locks picks the line-lock scheme for MatcherParallel.
	Locks LockScheme
	// Output receives (write ...) text; nil discards it.
	Output io.Writer
	// AcceptValues supplies successive (accept) results.
	AcceptValues []Value
	// FireBatch > 1 enables the speculative multi-fire act phase: up to
	// FireBatch dominant instantiations fire per super-cycle when their
	// read and write sets are disjoint, with a single match phase for the
	// whole group. Results are identical to FireBatch = 1.
	FireBatch int
	// ReorderJoins selects the join-order compile the engine matches on.
	// The zero value (ReorderOn) uses the cost-based planner; ReorderOff
	// pins the source condition-element order, the differential baseline.
	// Either way firing traces are identical — reordering only changes
	// the work the matcher does.
	ReorderJoins ReorderMode
	// MatchBudget > 0 caps the opposite-memory candidates any one rule's
	// joins may examine per recognize-act cycle. A rule over the cap is
	// quarantined — excised from the network, reported by Quarantined()
	// — instead of stalling the engine. Inert for the Lisp baseline.
	MatchBudget int64
	// Unlink enables left/right unlinking in the hash-table matchers:
	// right-side activations of a join whose left memory is empty are
	// buffered instead of stored and searched, and replayed when the
	// join's first left token arrives. Results are identical; null
	// activations on dead branches are skipped.
	Unlink bool
}

// ReorderMode selects the join-order compile (Config.ReorderJoins).
type ReorderMode int

// Join-order compiles.
const (
	// ReorderOn orders each rule's joins by the cost-based planner
	// (most selective condition elements first, negations after their
	// bound variables). The default.
	ReorderOn ReorderMode = iota
	// ReorderOff compiles joins in source order — the escape hatch and
	// the baseline the reorder differential tests compare against.
	ReorderOff
)

// RunOptions bound a run.
type RunOptions struct {
	MaxCycles    int
	RecordFiring bool
	TraceFires   bool
}

// Firing re-exports the engine's firing record.
type Firing = engine.Firing

// Result describes a completed run.
type Result struct {
	Cycles    int
	Firings   []Firing
	Halted    bool
	WMSize    int
	Elapsed   time.Duration
	MatchTime time.Duration
}

// Engine runs the recognize-act cycle for one program.
type Engine struct {
	inner       *engine.Engine
	par         *parmatch.Matcher // non-nil for MatcherParallel
	cs          *conflict.Set
	init        bool
	fireBatch   int
	matchBudget int64
}

// New builds an engine over a fresh working memory. Call Close when
// done (it stops the parallel matcher's goroutines).
func New(p *Program, cfg Config) (*Engine, error) {
	cs := conflict.New(conflict.Config{Shards: cfg.CSShards})
	net := p.net
	if cfg.ReorderJoins == ReorderOff {
		net = p.netSrc
	}
	var (
		m   engine.Matcher
		par *parmatch.Matcher
	)
	switch cfg.Matcher {
	case MatcherVS1, MatcherVS2:
		v := seqmatch.VS2
		if cfg.Matcher == MatcherVS1 {
			v = seqmatch.VS1
		}
		sm := seqmatch.New(net, v, cfg.HashLines, cs)
		if cfg.Unlink {
			sm.EnableUnlink()
		}
		m = sm
	case MatcherLisp:
		m = lispemu.New(p.prog, net, cs)
	case MatcherParallel:
		procs := cfg.MatchProcs
		if procs <= 0 {
			procs = 4
		}
		par = parmatch.New(net, parmatch.Config{
			Procs:  procs,
			Queues: cfg.TaskQueues,
			Lines:  cfg.HashLines,
			Scheme: cfg.Locks,
			Unlink: cfg.Unlink,
		}, cs)
		m = par
	default:
		return nil, fmt.Errorf("psme: unknown matcher kind %d", cfg.Matcher)
	}
	e, err := engine.New(p.prog, net, cs, m, cfg.Output)
	if err != nil {
		if par != nil {
			par.Close()
		}
		return nil, err
	}
	if len(cfg.AcceptValues) > 0 {
		// Classic OPS5 semantics: a fixed input script, end-of-file once
		// it runs out (the queue never suspends the run).
		q := engine.NewQueueIO(p.prog.Symbols, true)
		for _, v := range cfg.AcceptValues {
			q.Supply(v.toInternal(p.prog))
		}
		e.IO = q
	}
	return &Engine{inner: e, par: par, cs: cs, fireBatch: cfg.FireBatch, matchBudget: cfg.MatchBudget}, nil
}

// Run asserts the program's top-level makes (once) and executes
// recognize-act cycles until halt, exhaustion or the cycle limit.
func (e *Engine) Run(opt RunOptions) (*Result, error) {
	if !e.init {
		if err := e.inner.Init(); err != nil {
			return nil, err
		}
		e.init = true
	}
	r, err := e.inner.Run(engine.Options{
		MaxCycles:    opt.MaxCycles,
		RecordFiring: opt.RecordFiring,
		TraceFires:   opt.TraceFires,
		FireBatch:    e.fireBatch,
		MatchBudget:  e.matchBudget,
	})
	if err != nil {
		return nil, err
	}
	if !e.cs.Drained() {
		return nil, errors.New("psme: conflict set left parked deletes (matcher bug)")
	}
	return &Result{
		Cycles:    r.Cycles,
		Firings:   r.Firings,
		Halted:    r.Halted,
		WMSize:    r.WMSize,
		Elapsed:   r.Elapsed,
		MatchTime: r.MatchTime,
	}, nil
}

// WorkingMemory returns the live elements as printable strings.
func (e *Engine) WorkingMemory() []string {
	prog := e.inner.Prog
	var out []string
	for _, w := range e.inner.WM.Snapshot() {
		out = append(out, w.String(prog.Symbols, prog.AttrName))
	}
	return out
}

// ConflictStats returns the conflict set's counters: inserts, deletes,
// annihilations, live/fired/pending sizes and shard lock contention.
func (e *Engine) ConflictStats() stats.Conflict { return e.cs.StatsSnapshot() }

// ActStats returns the act-phase counters of the speculative multi-fire
// loop: grouped and serial firings, plan conflicts, rollbacks and
// match/RHS pipeline overlap. All zero when FireBatch <= 1.
func (e *Engine) ActStats() stats.Act { return e.inner.ActStats() }

// MemStats returns the token table's memory gauges — line count, live
// entries, high-water line depth — and adaptive-resize counters. Zero
// for the Lisp baseline backend, which has no token table.
func (e *Engine) MemStats() stats.Memory {
	if mm, ok := e.inner.Matcher.(interface{ MemStats() stats.Memory }); ok {
		return mm.MemStats()
	}
	return stats.Memory{}
}

// AddRules applies a runtime batch of (p ...) and (excise name) forms
// to the live engine, in source order: each change compiles into a new
// copy-on-write network epoch and the live working memory is replayed
// through the added topology, so new productions see existing elements.
// Redefining a production excises the old definition first. Returns the
// names added and excised. The Lisp baseline matcher does not support
// dynamic changes (engine.ErrDynamicUnsupported).
func (e *Engine) AddRules(src string) (added, excised []string, err error) {
	return e.inner.AddRules(src)
}

// Excise removes one production at runtime, dropping its memory entries
// and conflict-set instantiations while productions sharing nodes with
// it keep matching undisturbed.
func (e *Engine) Excise(name string) error { return e.inner.Excise(name) }

// Epoch returns the engine's current network version: 0 after Parse,
// incremented by every AddRules/Excise change.
func (e *Engine) Epoch() int { return e.inner.Epoch() }

// EpochStats returns the accumulated dynamic-change counters.
func (e *Engine) EpochStats() stats.Epoch { return e.inner.EpochStats() }

// NetworkSummary returns size statistics for the engine's current
// network epoch (which diverges from the parsed Program's base network
// once AddRules or Excise have run).
func (e *Engine) NetworkSummary() rete.NetStats { return e.inner.Net.Summarize() }

// MatchStats returns the matcher's counters — working-memory changes,
// node activations, memory-scan statistics, and (with Unlink on) the
// right activations skipped and joins relinked. Zero for backends that
// keep no counters.
func (e *Engine) MatchStats() stats.Match {
	if mm, ok := e.inner.Matcher.(interface{ MatchStats() stats.Match }); ok {
		return mm.MatchStats()
	}
	return stats.Match{}
}

// Quarantined returns the rules excised by Config.MatchBudget so far,
// in trip order.
func (e *Engine) Quarantined() []engine.QuarantinedRule { return e.inner.Quarantined() }

// QuarantinedRule re-exports the engine's budget-trip record.
type QuarantinedRule = engine.QuarantinedRule

// ReplanJoins re-runs the join planner for every live rule using
// measured working-memory cardinalities and recompiles, through
// excise-and-re-add network epochs, each rule whose cheapest order
// changed. Re-added rules get fresh refraction state, like an OPS5
// redefinition — call between phases, not mid-inference. Returns the
// rules recompiled.
func (e *Engine) ReplanJoins() ([]string, error) { return e.inner.ReplanJoins() }

// Close stops background match goroutines. Safe to call on any engine.
func (e *Engine) Close() {
	if e.par != nil {
		e.par.Close()
		e.par = nil
	}
}

// Value is a public OPS5 value for accept lists.
type Value struct {
	Sym string
	Num int64
	// IsNum selects the numeric interpretation.
	IsNum bool
}

func (v Value) toInternal(p *ops5.Program) wm.Value {
	if v.IsNum {
		return wm.Int(v.Num)
	}
	return wm.Sym(p.Symbols.Intern(v.Sym))
}

// SimConfig configures a run on the simulated Encore Multimax.
type SimConfig struct {
	MatchProcs int
	TaskQueues int
	HashLines  int
	Locks      LockScheme
	// Pipelined overlaps match with RHS evaluation (§3.1). The paper's
	// parallel columns are pipelined; its uniprocessor baseline is not.
	Pipelined bool
	MaxCycles int
}

// SimResult describes one simulated run.
type SimResult struct {
	Cycles       int
	Halted       bool
	Activations  int64
	MatchSeconds float64 // virtual NS32032 seconds of match time
	// QueueSpinsPerAccess and LineSpinsPerAccess are the paper's
	// contention measures (Tables 4-7 and 4-9).
	QueueSpinsPerAccess float64
	LineSpinsPerAccess  float64
}

// Simulate runs the program on the deterministic Multimax model. The
// match results equal a sequential run; only timing and contention are
// simulated.
func Simulate(p *Program, cfg SimConfig) (*SimResult, error) {
	r, err := multimax.Simulate(p.prog, p.net, multimax.Config{
		Procs:     cfg.MatchProcs,
		Queues:    cfg.TaskQueues,
		Lines:     cfg.HashLines,
		Scheme:    cfg.Locks,
		Pipelined: cfg.Pipelined,
		MaxCycles: cfg.MaxCycles,
	})
	if err != nil {
		return nil, err
	}
	costs := multimax.DefaultCosts()
	c := r.Contention
	out := &SimResult{
		Cycles:       r.Cycles,
		Halted:       r.Halted,
		Activations:  r.Activations,
		MatchSeconds: r.MatchSeconds(costs),
	}
	if c.QueueAcquires > 0 {
		out.QueueSpinsPerAccess = float64(c.QueueSpins) / float64(c.QueueAcquires)
	}
	if n := c.LineAcquiresLeft + c.LineAcquiresRight; n > 0 {
		out.LineSpinsPerAccess = float64(c.LineSpinsLeft+c.LineSpinsRight) / float64(n)
	}
	return out, nil
}

// BenchmarkProgram returns the OPS5 source of one of the paper's three
// evaluation programs — "weaver", "rubik" or "tourney" — or the classic
// "monkeys" (monkey-and-bananas) demo. scale 1.0 is the
// paper-comparable size; monkeys ignores scale.
func BenchmarkProgram(name string, scale float64) (string, error) {
	if scale <= 0 {
		scale = 1
	}
	switch name {
	case "monkeys":
		return workload.Monkeys(), nil
	case "weaver":
		n := int(20 * scale)
		if n < 1 {
			n = 1
		}
		return workload.Weaver(n, 9), nil
	case "rubik":
		n := int(60 * scale)
		if n < 1 {
			n = 1
		}
		return workload.Rubik(n), nil
	case "tourney":
		n := int(16 * scale)
		if n < 2 {
			n = 2
		}
		return workload.Tourney(n), nil
	}
	return "", fmt.Errorf("psme: unknown benchmark program %q", name)
}
