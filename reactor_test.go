package psme_test

import (
	"os"
	"strings"
	"testing"

	psme "repro"
)

// reactorInput is the operator script for the canonical LOCA run:
// incident id, five instrument readings (queried most-recent fact
// first: hpis-flow, sg-level, pcs-pressure, containment-pressure,
// containment-radiation), then the free-form log line (acceptline)
// swallows whole.
var reactorInput = []psme.Value{
	{Sym: "case-42"},
	{Num: 10, IsNum: true}, {Num: 55, IsNum: true}, {Num: 30, IsNum: true},
	{Num: 60, IsNum: true}, {Num: 80, IsNum: true},
	{Sym: "all"}, {Sym: "systems"}, {Sym: "nominal"},
}

// reactorFirings is the golden firing trace of the LOCA scenario.
var reactorFirings = []string{
	"start",
	"get-value", "get-value", "get-value", "get-value", "get-value",
	"end-of-input",
	"classify-high", "classify-high", "classify-low", "classify-high", "classify-low",
	"end-of-classification",
	"diagnose-loca",
	"report",
	"echo-trace",
	"log-entry",
	"sign-off",
}

const reactorOutput = `
REACTOR accident diagnosis
enter incident id:
enter hpis-flow reading:
enter sg-level reading:
enter pcs-pressure reading:
enter containment-pressure reading:
enter containment-radiation reading:
containment-radiation is high
containment-pressure is high
pcs-pressure is low
sg-level is high
hpis-flow is low

incident case-42 diagnosis: loca
audit trail confirms loca
enter operator log entry:
session complete
`

// TestReactorGolden runs the REACTOR port on every backend and checks
// the firing trace, program output and audit-trail WMEs byte for byte.
func TestReactorGolden(t *testing.T) {
	src, err := os.ReadFile("examples/reactor/reactor.ops")
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []psme.MatcherKind{psme.MatcherLisp, psme.MatcherVS1, psme.MatcherVS2, psme.MatcherParallel} {
		t.Run(m.String(), func(t *testing.T) {
			prog, err := psme.Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			var out strings.Builder
			eng, err := psme.New(prog, psme.Config{
				Matcher:      m,
				Output:       &out,
				AcceptValues: reactorInput,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer eng.Close()
			res, err := eng.Run(psme.RunOptions{MaxCycles: 100, RecordFiring: true})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Halted {
				t.Fatalf("did not halt in %d cycles", res.Cycles)
			}
			var fired []string
			for _, f := range res.Firings {
				fired = append(fired, f.Rule)
			}
			if got, want := strings.Join(fired, " "), strings.Join(reactorFirings, " "); got != want {
				t.Errorf("firing trace:\n got %s\nwant %s", got, want)
			}
			if out.String() != reactorOutput {
				t.Errorf("output:\n got %q\nwant %q", out.String(), reactorOutput)
			}
			// The audit trail and the operator log both live in vector
			// attributes; check their printed forms.
			joined := strings.Join(eng.WorkingMemory(), "\n")
			if !strings.Contains(joined, "(trace ^elt diagnosis loca confirmed)") {
				t.Errorf("missing audit-trail vector WME in:\n%s", joined)
			}
			if !strings.Contains(joined, "(trace ^elt log all systems nominal)") {
				t.Errorf("missing operator-log vector WME in:\n%s", joined)
			}
		})
	}
}
