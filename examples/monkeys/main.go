// Monkeys runs the classic monkey-and-bananas planning program — the
// canonical OPS5 teaching example — under the MEA conflict-resolution
// strategy, tracing every production firing.
package main

import (
	"fmt"
	"log"
	"os"

	psme "repro"
)

func main() {
	src, err := psme.BenchmarkProgram("monkeys", 1)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := psme.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := psme.New(prog, psme.Config{Matcher: psme.MatcherVS2, Output: os.Stdout})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Run(psme.RunOptions{MaxCycles: 100, RecordFiring: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nplan found in %d cycles (halted=%v):\n", res.Cycles, res.Halted)
	for _, f := range res.Firings {
		fmt.Printf("  %2d. %s\n", f.Cycle, f.Rule)
	}
}
