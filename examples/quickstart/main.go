// Quickstart: parse a small OPS5 program (the paper's Figure 2-1
// production plus a driver), run it on the parallel matcher, and print
// the firings and the final working memory.
package main

import (
	"fmt"
	"log"
	"os"

	psme "repro"
)

const src = `
(literalize goal type color)
(literalize block id color selected)

; The sample production of the paper's Figure 2-1.
(p find-colored-block
  (goal ^type find-block ^color <c>)
  (block ^id <i> ^color <c> ^selected no)
-->
  (write selected block <i> (crlf))
  (modify 2 ^selected yes))

; Stop once nothing red remains unselected.
(p all-done
  (goal ^type find-block ^color <c>)
  - (block ^color <c> ^selected no)
-->
  (write no unselected <c> blocks left (crlf))
  (halt))

(make goal ^type find-block ^color red)
(make block ^id b1 ^color red ^selected no)
(make block ^id b2 ^color blue ^selected no)
(make block ^id b3 ^color red ^selected no)
`

func main() {
	prog, err := psme.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled %d rules into a network with %+v\n\n", prog.Rules(), prog.NetworkSummary())

	eng, err := psme.New(prog, psme.Config{
		Matcher:    psme.MatcherParallel,
		MatchProcs: 4,
		TaskQueues: 2,
		Locks:      psme.LockSimple,
		Output:     os.Stdout,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()

	res, err := eng.Run(psme.RunOptions{MaxCycles: 100, RecordFiring: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d cycles, halted=%v\n", res.Cycles, res.Halted)
	fmt.Println("final working memory:")
	for _, w := range eng.WorkingMemory() {
		fmt.Println(" ", w)
	}
}
