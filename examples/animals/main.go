// Animals is a small identification expert system in the classic
// forward-chaining style: observed attributes drive intermediate
// classifications (mammal, carnivore, ungulate, bird) which drive the
// final identification — the kind of rule-based program OPS5 was built
// for. The same observations are run for several animals, each on its
// own engine over the same compiled network.
package main

import (
	"fmt"
	"log"
	"strings"

	psme "repro"
)

const rules = `
(literalize trait name value)
(literalize class name)
(literalize species name)

; Intermediate classifications.
(p mammal-hair
  (trait ^name covering ^value hair)
  - (class ^name mammal)
-->
  (make class ^name mammal))

(p mammal-milk
  (trait ^name gives-milk ^value yes)
  - (class ^name mammal)
-->
  (make class ^name mammal))

(p bird-feathers
  (trait ^name covering ^value feathers)
  - (class ^name bird)
-->
  (make class ^name bird))

(p carnivore-teeth
  (class ^name mammal)
  (trait ^name eats ^value meat)
  - (class ^name carnivore)
-->
  (make class ^name carnivore))

(p ungulate-hooves
  (class ^name mammal)
  (trait ^name has ^value hooves)
  - (class ^name ungulate)
-->
  (make class ^name ungulate))

; Identifications.
(p cheetah
  (class ^name carnivore)
  (trait ^name color ^value tawny)
  (trait ^name marks ^value dark-spots)
-->
  (make species ^name cheetah))

(p tiger
  (class ^name carnivore)
  (trait ^name color ^value tawny)
  (trait ^name marks ^value black-stripes)
-->
  (make species ^name tiger))

(p giraffe
  (class ^name ungulate)
  (trait ^name neck ^value long)
  (trait ^name marks ^value dark-spots)
-->
  (make species ^name giraffe))

(p zebra
  (class ^name ungulate)
  (trait ^name marks ^value black-stripes)
-->
  (make species ^name zebra))

(p penguin
  (class ^name bird)
  (trait ^name flies ^value no)
  (trait ^name swims ^value yes)
-->
  (make species ^name penguin))

(p albatross
  (class ^name bird)
  (trait ^name flies ^value well)
-->
  (make species ^name albatross))

(p identified
  (species ^name <s>)
-->
  (write identified: <s> (crlf))
  (halt))
`

// cases are the observation sets to identify.
var cases = map[string][][2]string{
	"mystery-1": {{"covering", "hair"}, {"eats", "meat"}, {"color", "tawny"}, {"marks", "dark-spots"}},
	"mystery-2": {{"gives-milk", "yes"}, {"has", "hooves"}, {"marks", "black-stripes"}},
	"mystery-3": {{"covering", "feathers"}, {"flies", "no"}, {"swims", "yes"}},
	"mystery-4": {{"covering", "hair"}, {"gives-milk", "yes"}, {"has", "hooves"},
		{"neck", "long"}, {"marks", "dark-spots"}},
}

func main() {
	for name, traits := range cases {
		var src strings.Builder
		src.WriteString(rules)
		for _, tr := range traits {
			fmt.Fprintf(&src, "(make trait ^name %s ^value %s)\n", tr[0], tr[1])
		}
		prog, err := psme.Parse(src.String())
		if err != nil {
			log.Fatal(err)
		}
		var out strings.Builder
		eng, err := psme.New(prog, psme.Config{Matcher: psme.MatcherVS2, Output: &out})
		if err != nil {
			log.Fatal(err)
		}
		res, err := eng.Run(psme.RunOptions{MaxCycles: 100})
		eng.Close()
		if err != nil {
			log.Fatal(err)
		}
		verdict := strings.TrimSpace(out.String())
		if !res.Halted {
			verdict = "no identification"
		}
		fmt.Printf("%-10s %v\n           -> %s\n", name, traits, verdict)
	}
}
