// Reactor runs the interactive REACTOR accident-diagnosis program on
// the OPS5 top level, with (accept) and (acceptline) reading from the
// terminal. Type "run" at the prompt, then answer the program's
// questions; readings above 50 classify as high.
//
// The same program drives the non-interactive paths: the facade queues
// input up front (Config.AcceptValues) and the inference server
// suspends with awaiting_input until a batch supplies values.
package main

import (
	_ "embed"
	"fmt"
	"os"

	"repro/internal/repl"
)

//go:embed reactor.ops
var src string

func main() {
	r, err := repl.New(src, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reactor:", err)
		os.Exit(1)
	}
	if err := r.Run(os.Stdin); err != nil {
		fmt.Fprintln(os.Stderr, "reactor:", err)
		os.Exit(1)
	}
}
