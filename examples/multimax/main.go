// Multimax sweeps the simulated Encore Multimax over 1..13 match
// processes for the Rubik workload and prints the speed-up curve — the
// shape of the paper's Tables 4-5/4-6/4-8 — comparing a single task
// queue against eight, and simple line locks against MRSW.
package main

import (
	"fmt"
	"log"
	"strings"

	psme "repro"
)

func main() {
	src, err := psme.BenchmarkProgram("rubik", 0.5)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := psme.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	base, err := psme.Simulate(prog, psme.SimConfig{
		MatchProcs: 1, TaskQueues: 1, Locks: psme.LockSimple, MaxCycles: 100000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniprocessor match time: %.1f virtual seconds (NS32032 @ 0.75 MIPS)\n\n", base.MatchSeconds)

	type curve struct {
		label  string
		queues int
		locks  psme.LockScheme
	}
	curves := []curve{
		{"1 queue, simple locks ", 1, psme.LockSimple},
		{"8 queues, simple locks", 8, psme.LockSimple},
		{"8 queues, MRSW locks  ", 8, psme.LockMRSW},
	}
	procs := []int{1, 3, 5, 7, 11, 13}
	fmt.Printf("%-24s", "match processes:")
	for _, p := range procs {
		fmt.Printf("%7d", p)
	}
	fmt.Println()
	for _, c := range curves {
		fmt.Printf("%-24s", c.label)
		for _, p := range procs {
			r, err := psme.Simulate(prog, psme.SimConfig{
				MatchProcs: p, TaskQueues: c.queues, Locks: c.locks,
				Pipelined: true, MaxCycles: 100000,
			})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%6.2fx", base.MatchSeconds/r.MatchSeconds)
		}
		fmt.Println()
	}
	fmt.Println("\n" + strings.Repeat("-", 66))
	fmt.Println("single queue saturates; multiple queues unlock the speed-up —")
	fmt.Println("the paper's central scheduling result (§5).")
}
