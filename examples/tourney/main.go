// Tourney builds a round-robin tournament schedule with the paper's
// cross-product-heavy Tourney program, then reads the schedule back out
// of working memory — and shows why this program resists parallel
// speed-up by printing its simulated line-lock contention next to
// Rubik's.
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"

	psme "repro"
)

func main() {
	src, err := psme.BenchmarkProgram("tourney", 0.5) // 8 teams
	if err != nil {
		log.Fatal(err)
	}
	prog, err := psme.Parse(src)
	if err != nil {
		log.Fatal(err)
	}
	eng, err := psme.New(prog, psme.Config{Matcher: psme.MatcherVS2})
	if err != nil {
		log.Fatal(err)
	}
	defer eng.Close()
	res, err := eng.Run(psme.RunOptions{MaxCycles: 10000})
	if err != nil {
		log.Fatal(err)
	}
	if !res.Halted {
		log.Fatalf("scheduler did not finish (%d cycles)", res.Cycles)
	}

	// Pull the schedule out of working memory: pair wmes carry the
	// round assignments.
	rounds := map[string][]string{}
	var roundKeys []string
	for _, w := range eng.WorkingMemory() {
		if !strings.HasPrefix(w, "(pair ") {
			continue
		}
		attrs := parseAttrs(w)
		r := attrs["round"]
		if _, seen := rounds[r]; !seen {
			roundKeys = append(roundKeys, r)
		}
		rounds[r] = append(rounds[r], fmt.Sprintf("%s-%s", attrs["t1"], attrs["t2"]))
	}
	sort.Strings(roundKeys)
	fmt.Printf("schedule built in %d cycles:\n", res.Cycles)
	for _, r := range roundKeys {
		fmt.Printf("  round %-3s %s\n", r+":", strings.Join(rounds[r], "  "))
	}

	// The paper's §4.2 analysis: Tourney's pairing rules join condition
	// elements with no common variables, so its tokens pile onto single
	// hash lines. Compare simulated line contention against Rubik.
	fmt.Println("\nsimulated hash-line contention at 1+12 processes (spins/access):")
	for _, name := range []string{"tourney", "rubik"} {
		bsrc, err := psme.BenchmarkProgram(name, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		bprog, err := psme.Parse(bsrc)
		if err != nil {
			log.Fatal(err)
		}
		sim, err := psme.Simulate(bprog, psme.SimConfig{
			MatchProcs: 12, TaskQueues: 8, Locks: psme.LockSimple,
			Pipelined: true, MaxCycles: 100000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %.1f\n", name, sim.LineSpinsPerAccess)
	}
}

// parseAttrs reads "(class ^a v ^b w)" into a map.
func parseAttrs(s string) map[string]string {
	out := map[string]string{}
	fields := strings.Fields(strings.Trim(s, "()"))
	for i := 1; i+1 < len(fields); i += 2 {
		out[strings.TrimPrefix(fields[i], "^")] = fields[i+1]
	}
	return out
}
