// Benchmarks regenerating the paper's evaluation, one benchmark family
// per table (go test -bench Table). Shapes, not absolute numbers, are
// the reproduction target: the virtual-seconds and contention metrics
// reported via b.ReportMetric are the table cells. cmd/psmbench prints
// the full tables; EXPERIMENTS.md records paper-vs-measured.
package psme_test

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	psme "repro"
	"repro/internal/conflict"
	"repro/internal/multimax"
	"repro/internal/ops5"
	"repro/internal/parmatch"
	"repro/internal/rete"
	"repro/internal/seqmatch"
	"repro/internal/tables"
	"repro/internal/wm"
)

// benchScale keeps single benchmark iterations under ~100ms; psmbench
// runs the paper-scale (1.0) versions.
const benchScale = 0.5

func specs(b *testing.B) []tables.Spec {
	b.Helper()
	return tables.Programs(benchScale)
}

func spec(b *testing.B, name string) tables.Spec {
	b.Helper()
	for _, s := range specs(b) {
		if s.Name == name {
			return s
		}
	}
	b.Fatalf("no spec %q", name)
	return tables.Spec{}
}

// BenchmarkParse measures front-end throughput on the largest program.
func BenchmarkParse(b *testing.B) {
	src, err := psme.BenchmarkProgram("weaver", benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := psme.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

// seqBench runs one full program on a sequential matcher per iteration.
func seqBench(b *testing.B, prog, variant string) {
	sp := spec(b, prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := tables.RunSeq(sp, variant)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(r.Rec.M.Activations), "activations")
		}
	}
}

// Table 4-1: vs1 (list memories) vs vs2 (hash memories), per program.
func BenchmarkTable41_VS1_Weaver(b *testing.B)  { seqBench(b, "Weaver", "vs1") }
func BenchmarkTable41_VS2_Weaver(b *testing.B)  { seqBench(b, "Weaver", "vs2") }
func BenchmarkTable41_VS1_Rubik(b *testing.B)   { seqBench(b, "Rubik", "vs1") }
func BenchmarkTable41_VS2_Rubik(b *testing.B)   { seqBench(b, "Rubik", "vs2") }
func BenchmarkTable41_VS1_Tourney(b *testing.B) { seqBench(b, "Tourney", "vs1") }
func BenchmarkTable41_VS2_Tourney(b *testing.B) { seqBench(b, "Tourney", "vs2") }

// Tables 4-2 and 4-3 are statistics of the same instrumented runs; the
// benchmark reports the mean tokens examined as metrics.
func statBench(b *testing.B, prog string) {
	sp := spec(b, prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v1, err := tables.RunSeq(sp, "vs1")
		if err != nil {
			b.Fatal(err)
		}
		v2, err := tables.RunSeq(sp, "vs2")
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			m1, m2 := v1.Rec.M, v2.Rec.M
			b.ReportMetric(mean(m1.OppExaminedLeft, m1.OppNonEmptyLeft), "t42-left-lin")
			b.ReportMetric(mean(m2.OppExaminedLeft, m2.OppNonEmptyLeft), "t42-left-hash")
			b.ReportMetric(mean(m1.SameExaminedLeft, m1.DeletesLeft), "t43-left-lin")
			b.ReportMetric(mean(m2.SameExaminedLeft, m2.DeletesLeft), "t43-left-hash")
		}
	}
}

func BenchmarkTable42_43_Weaver(b *testing.B)  { statBench(b, "Weaver") }
func BenchmarkTable42_43_Rubik(b *testing.B)   { statBench(b, "Rubik") }
func BenchmarkTable42_43_Tourney(b *testing.B) { statBench(b, "Tourney") }

// Table 4-4: interpreted vs compiled matcher.
func BenchmarkTable44_Interp_Rubik(b *testing.B) { seqBenchLisp(b, "Rubik") }
func BenchmarkTable44_Interp_Tourney(b *testing.B) {
	seqBenchLisp(b, "Tourney")
}

func seqBenchLisp(b *testing.B, prog string) {
	sp := spec(b, prog)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tables.RunSeq(sp, "lisp"); err != nil {
			b.Fatal(err)
		}
	}
}

// simBench runs one simulated configuration per iteration and reports
// the virtual match seconds and speed-up against the non-pipelined
// single-process baseline.
func simBench(b *testing.B, prog string, cfg multimax.Config) {
	sp := spec(b, prog)
	base, err := tables.RunSim(sp, multimax.Config{Procs: 1, Queues: 1, Scheme: cfg.Scheme})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := tables.RunSim(sp, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			costs := multimax.DefaultCosts()
			b.ReportMetric(r.MatchSeconds(costs), "virtual-s")
			b.ReportMetric(float64(base.MatchInstr)/float64(r.MatchInstr), "speedup")
			c := r.Contention
			b.ReportMetric(mean(c.QueueSpins, c.QueueAcquires), "queue-spins")
			b.ReportMetric(mean(c.LineSpinsLeft, c.LineAcquiresLeft), "line-spins-left")
		}
	}
}

// Table 4-5: single queue, simple locks, 1+13 processes.
func BenchmarkTable45_Weaver(b *testing.B) {
	simBench(b, "Weaver", multimax.Config{Procs: 13, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true})
}
func BenchmarkTable45_Rubik(b *testing.B) {
	simBench(b, "Rubik", multimax.Config{Procs: 13, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true})
}
func BenchmarkTable45_Tourney(b *testing.B) {
	simBench(b, "Tourney", multimax.Config{Procs: 13, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true})
}

// Table 4-6: eight queues, simple locks, 1+13 processes.
func BenchmarkTable46_Weaver(b *testing.B) {
	simBench(b, "Weaver", multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true})
}
func BenchmarkTable46_Rubik(b *testing.B) {
	simBench(b, "Rubik", multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true})
}
func BenchmarkTable46_Tourney(b *testing.B) {
	simBench(b, "Tourney", multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true})
}

// Table 4-7 is the queue-spins metric of the Table 4-5 benchmarks; this
// family reports it at the intermediate process counts.
func BenchmarkTable47_Rubik_1p7(b *testing.B) {
	simBench(b, "Rubik", multimax.Config{Procs: 7, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true})
}
func BenchmarkTable47_Rubik_1p11(b *testing.B) {
	simBench(b, "Rubik", multimax.Config{Procs: 11, Queues: 1, Scheme: parmatch.SchemeSimple, Pipelined: true})
}

// Table 4-8: eight queues, MRSW locks, 1+13 processes.
func BenchmarkTable48_Weaver(b *testing.B) {
	simBench(b, "Weaver", multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeMRSW, Pipelined: true})
}
func BenchmarkTable48_Rubik(b *testing.B) {
	simBench(b, "Rubik", multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeMRSW, Pipelined: true})
}
func BenchmarkTable48_Tourney(b *testing.B) {
	simBench(b, "Tourney", multimax.Config{Procs: 13, Queues: 8, Scheme: parmatch.SchemeMRSW, Pipelined: true})
}

// Table 4-9: line-lock contention at 12 processes, both schemes (the
// line-spins-left metric).
func BenchmarkTable49_Tourney_Simple(b *testing.B) {
	simBench(b, "Tourney", multimax.Config{Procs: 12, Queues: 8, Scheme: parmatch.SchemeSimple, Pipelined: true})
}
func BenchmarkTable49_Tourney_MRSW(b *testing.B) {
	simBench(b, "Tourney", multimax.Config{Procs: 12, Queues: 8, Scheme: parmatch.SchemeMRSW, Pipelined: true})
}

// BenchmarkParallelHost measures the real goroutine matcher on this
// machine (bounded by host cores, unlike the simulation).
func BenchmarkParallelHost_Rubik(b *testing.B) {
	sp := spec(b, "Rubik")
	procs := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := tables.RunPar(sp, parmatch.Config{Procs: procs, Queues: 4, Scheme: parmatch.SchemeSimple})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(r.Res.MatchTime.Seconds(), "match-s")
		}
	}
}

// BenchmarkMatchKernels measures the steady-state match hot path alone
// (no engine, no RHS): one iteration asserts and retracts a fixed WME
// block through the parallel matcher. allocs/op here is the
// allocation-discipline headline BENCH_match.json tracks; the steal and
// overflow counters come out as metrics.
func BenchmarkMatchKernels(b *testing.B) {
	for _, name := range tables.KernelNames() {
		for _, procs := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/p%d", name, procs), func(b *testing.B) {
				k, err := tables.NewKernel(name, 64)
				if err != nil {
					b.Fatal(err)
				}
				m := parmatch.New(k.Net, parmatch.Config{
					Procs: procs, Queues: 4, Scheme: parmatch.SchemeSimple,
				}, tables.KernelSink())
				defer m.Close()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					k.Round(m)
				}
				b.StopTimer()
				b.ReportMetric(float64(m.Activations())/float64(b.N), "acts/op")
			})
		}
	}
}

// BenchmarkMatchKernelsSeq is the sequential-matcher twin, pinning the
// uniprocessor cost of the same kernels.
func BenchmarkMatchKernelsSeq(b *testing.B) {
	for _, name := range tables.KernelNames() {
		b.Run(name, func(b *testing.B) {
			k, err := tables.NewKernel(name, 64)
			if err != nil {
				b.Fatal(err)
			}
			m := seqmatch.New(k.Net, seqmatch.VS2, 0, tables.KernelSink())
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.Round(m)
			}
		})
	}
}

func mean(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// conflictRule builds the single-CE rule the conflict benchmarks hang
// instantiations off.
func conflictRule(b *testing.B) *rete.CompiledRule {
	b.Helper()
	prog, err := ops5.Parse("(literalize fact id)\n(p seen (fact ^id <i>) --> (halt))")
	if err != nil {
		b.Fatal(err)
	}
	net, err := rete.Compile(prog)
	if err != nil {
		b.Fatal(err)
	}
	return net.Rules[0]
}

// BenchmarkConflictChurn measures one steady-state conflict-set
// insert+remove pair with `live` instantiations resident: the headline
// O(1)-vs-live claim. Equal ns/op across the live sizes at a fixed
// shard count is the win over the old O(n) SameWmes scans.
func BenchmarkConflictChurn(b *testing.B) {
	for _, live := range []int{1000, 10000} {
		for _, shards := range []int{1, 64} {
			b.Run(fmt.Sprintf("live%d/s%d", live, shards), func(b *testing.B) {
				cs := conflict.New(conflict.Config{Shards: shards})
				rule := conflictRule(b)
				for tag := 1; tag <= live; tag++ {
					cs.InsertInstantiation(rule, []*wm.WME{{TimeTag: tag}})
				}
				w := []*wm.WME{{TimeTag: live + 1}}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cs.InsertInstantiation(rule, w)
					cs.RemoveInstantiation(rule, w)
				}
			})
		}
	}
}

// BenchmarkConflictSelect measures warm-cache Select at large live
// sets: cost should track the shard count, not the set size.
func BenchmarkConflictSelect(b *testing.B) {
	for _, live := range []int{1000, 10000} {
		for _, shards := range []int{1, 64} {
			b.Run(fmt.Sprintf("live%d/s%d", live, shards), func(b *testing.B) {
				cs := conflict.New(conflict.Config{Shards: shards})
				rule := conflictRule(b)
				for tag := 1; tag <= live; tag++ {
					cs.InsertInstantiation(rule, []*wm.WME{{TimeTag: tag}})
				}
				if cs.Select() == nil {
					b.Fatal("preloaded set selected nil")
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					cs.Select()
				}
			})
		}
	}
}

// BenchmarkConflictParallelChurn runs 4 concurrent churners on
// disjoint keys; spins/acquire contrasts one global stripe against
// full striping (the counters the acceptance criteria track).
func BenchmarkConflictParallelChurn(b *testing.B) {
	const churners = 4
	for _, shards := range []int{1, 64} {
		b.Run(fmt.Sprintf("s%d", shards), func(b *testing.B) {
			cs := conflict.New(conflict.Config{Shards: shards})
			rule := conflictRule(b)
			before := cs.StatsSnapshot()
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			for g := 0; g < churners; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					w := []*wm.WME{{TimeTag: g + 1}}
					for i := g; i < b.N; i += churners {
						cs.InsertInstantiation(rule, w)
						cs.RemoveInstantiation(rule, w)
					}
				}(g)
			}
			wg.Wait()
			b.StopTimer()
			st := cs.StatsSnapshot()
			st.Sub(&before)
			b.ReportMetric(mean(st.ShardSpins, st.ShardAcquires), "spins/acquire")
		})
	}
}

// BenchmarkEngineFiringRate measures end-to-end recognize-act cycles per
// second on the counter micro-program.
func BenchmarkEngineFiringRate(b *testing.B) {
	src := `
(literalize count value)
(p inc (count ^value {<v> < 1000000000}) --> (modify 1 ^value (compute <v> + 1)))
(make count ^value 0)
`
	prog, err := psme.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := psme.New(prog, psme.Config{Matcher: psme.MatcherVS2})
	if err != nil {
		b.Fatal(err)
	}
	defer eng.Close()
	b.ResetTimer()
	res, err := eng.Run(psme.RunOptions{MaxCycles: b.N})
	if err != nil {
		b.Fatal(err)
	}
	if res.Cycles != b.N {
		b.Fatalf("ran %d cycles, want %d", res.Cycles, b.N)
	}
}
