// Command ops5run executes an OPS5 program file on a chosen matcher
// backend.
//
// Usage:
//
//	ops5run [-matcher vs2|vs1|lisp|parallel] [-procs 4] [-queues 2]
//	        [-locks simple|mrsw] [-cycles 0] [-trace] [-wm] file.ops5
//	ops5run -program rubik [-scale 1.0] ...   # built-in benchmark programs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	psme "repro"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with its environment abstracted out, so tests can drive
// the full CLI path and check exit codes: 0 success, 1 runtime or parse
// failure, 2 usage error.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("ops5run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	matcher := fs.String("matcher", "vs2", "match backend: vs2, vs1, lisp, parallel")
	procs := fs.Int("procs", 4, "match processes for -matcher parallel")
	queues := fs.Int("queues", 2, "task queues for -matcher parallel")
	locks := fs.String("locks", "simple", "line locks for -matcher parallel: simple or mrsw")
	cycles := fs.Int("cycles", 0, "cycle limit (0 = unlimited)")
	trace := fs.Bool("trace", false, "print each production firing")
	dumpWM := fs.Bool("wm", false, "print the final working memory")
	program := fs.String("program", "", "run a built-in program (weaver, rubik, tourney, monkeys) instead of a file")
	scale := fs.Float64("scale", 1.0, "built-in program scale")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(stderr, "ops5run:", err)
		return 1
	}

	var src string
	switch {
	case *program != "":
		s, err := psme.BenchmarkProgram(*program, *scale)
		if err != nil {
			return fail(err)
		}
		src = s
	case fs.NArg() == 1:
		data, err := os.ReadFile(fs.Arg(0))
		if err != nil {
			return fail(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(stderr, "usage: ops5run [flags] file.ops5  (or -program name; see -h)")
		return 2
	}

	prog, err := psme.Parse(src)
	if err != nil {
		return fail(err)
	}
	cfg := psme.Config{Output: stdout, MatchProcs: *procs, TaskQueues: *queues}
	switch *matcher {
	case "vs2":
		cfg.Matcher = psme.MatcherVS2
	case "vs1":
		cfg.Matcher = psme.MatcherVS1
	case "lisp":
		cfg.Matcher = psme.MatcherLisp
	case "parallel":
		cfg.Matcher = psme.MatcherParallel
	default:
		return fail(fmt.Errorf("unknown matcher %q", *matcher))
	}
	switch *locks {
	case "simple":
		cfg.Locks = psme.LockSimple
	case "mrsw":
		cfg.Locks = psme.LockMRSW
	default:
		return fail(fmt.Errorf("unknown lock scheme %q", *locks))
	}

	eng, err := psme.New(prog, cfg)
	if err != nil {
		return fail(err)
	}
	defer eng.Close()
	res, err := eng.Run(psme.RunOptions{MaxCycles: *cycles, TraceFires: *trace})
	if err != nil {
		return fail(err)
	}
	fmt.Fprintf(stderr, "%d cycles, halted=%v, wm=%d, total %v (match %v)\n",
		res.Cycles, res.Halted, res.WMSize, res.Elapsed.Round(1000), res.MatchTime.Round(1000))
	if *dumpWM {
		for _, w := range eng.WorkingMemory() {
			fmt.Fprintln(stdout, w)
		}
	}
	return 0
}
