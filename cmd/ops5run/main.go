// Command ops5run executes an OPS5 program file on a chosen matcher
// backend.
//
// Usage:
//
//	ops5run [-matcher vs2|vs1|lisp|parallel] [-procs 4] [-queues 2]
//	        [-locks simple|mrsw] [-cycles 0] [-trace] [-wm] file.ops5
//	ops5run -program rubik [-scale 1.0] ...   # built-in benchmark programs
package main

import (
	"flag"
	"fmt"
	"os"

	psme "repro"
)

func main() {
	matcher := flag.String("matcher", "vs2", "match backend: vs2, vs1, lisp, parallel")
	procs := flag.Int("procs", 4, "match processes for -matcher parallel")
	queues := flag.Int("queues", 2, "task queues for -matcher parallel")
	locks := flag.String("locks", "simple", "line locks for -matcher parallel: simple or mrsw")
	cycles := flag.Int("cycles", 0, "cycle limit (0 = unlimited)")
	trace := flag.Bool("trace", false, "print each production firing")
	dumpWM := flag.Bool("wm", false, "print the final working memory")
	program := flag.String("program", "", "run a built-in program (weaver, rubik, tourney, monkeys) instead of a file")
	scale := flag.Float64("scale", 1.0, "built-in program scale")
	flag.Parse()

	var src string
	switch {
	case *program != "":
		s, err := psme.BenchmarkProgram(*program, *scale)
		if err != nil {
			fatal(err)
		}
		src = s
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: ops5run [flags] file.ops5  (or -program name; see -h)")
		os.Exit(2)
	}

	prog, err := psme.Parse(src)
	if err != nil {
		fatal(err)
	}
	cfg := psme.Config{Output: os.Stdout, MatchProcs: *procs, TaskQueues: *queues}
	switch *matcher {
	case "vs2":
		cfg.Matcher = psme.MatcherVS2
	case "vs1":
		cfg.Matcher = psme.MatcherVS1
	case "lisp":
		cfg.Matcher = psme.MatcherLisp
	case "parallel":
		cfg.Matcher = psme.MatcherParallel
	default:
		fatal(fmt.Errorf("unknown matcher %q", *matcher))
	}
	switch *locks {
	case "simple":
		cfg.Locks = psme.LockSimple
	case "mrsw":
		cfg.Locks = psme.LockMRSW
	default:
		fatal(fmt.Errorf("unknown lock scheme %q", *locks))
	}

	eng, err := psme.New(prog, cfg)
	if err != nil {
		fatal(err)
	}
	defer eng.Close()
	res, err := eng.Run(psme.RunOptions{MaxCycles: *cycles, TraceFires: *trace})
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "%d cycles, halted=%v, wm=%d, total %v (match %v)\n",
		res.Cycles, res.Halted, res.WMSize, res.Elapsed.Round(1000), res.MatchTime.Round(1000))
	if *dumpWM {
		for _, w := range eng.WorkingMemory() {
			fmt.Println(w)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ops5run:", err)
	os.Exit(1)
}
