package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeProgram drops src into a temp .ops5 file and returns its path.
func writeProgram(t *testing.T, src string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "prog.ops5")
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const goodSrc = `
(literalize count n)
(p step (count ^n {<n> < 3}) --> (modify 1 ^n (compute <n> + 1)))
(p done (count ^n 3) --> (halt))
(make count ^n 0)
`

func TestRunExitCodes(t *testing.T) {
	good := writeProgram(t, goodSrc)
	bad := writeProgram(t, "(p broken (thing ^x")
	cases := []struct {
		name   string
		args   []string
		code   int
		stderr string
	}{
		{"good file", []string{good}, 0, "halted=true"},
		{"parse failure", []string{bad}, 1, "ops5run:"},
		{"missing file", []string{filepath.Join(t.TempDir(), "nope.ops5")}, 1, "ops5run:"},
		{"no args", nil, 2, "usage:"},
		{"two files", []string{good, good}, 2, "usage:"},
		{"bad flag", []string{"-nonsense"}, 2, "flag provided but not defined"},
		{"bad matcher", []string{"-matcher", "vax", good}, 1, "unknown matcher"},
		{"bad locks", []string{"-matcher", "parallel", "-locks", "spin", good}, 1, "unknown lock scheme"},
		{"bad builtin", []string{"-program", "nosuch"}, 1, "ops5run:"},
		{"builtin ok", []string{"-program", "monkeys"}, 0, "halted=true"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr strings.Builder
			code := run(tc.args, &stdout, &stderr)
			if code != tc.code {
				t.Fatalf("exit code %d, want %d (stderr: %s)", code, tc.code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.stderr) {
				t.Fatalf("stderr %q missing %q", stderr.String(), tc.stderr)
			}
		})
	}
}

// TestRunDumpsWM checks -wm prints the final working memory to stdout.
func TestRunDumpsWM(t *testing.T) {
	good := writeProgram(t, goodSrc)
	var stdout, stderr strings.Builder
	if code := run([]string{"-wm", good}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "^n 3") {
		t.Fatalf("wm dump missing final element:\n%s", stdout.String())
	}
}
