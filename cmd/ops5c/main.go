// Command ops5c compiles an OPS5 program and dumps its Rete network —
// the textual counterpart of the paper's Figure 2-2. With -summary it
// prints network-size statistics only.
//
// Usage:
//
//	ops5c [-summary] file.ops5
//	ops5c -pretty file.ops5    # re-emit the parsed program
//	ops5c -figure22            # dump the network for the paper's example
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/ops5"
	"repro/internal/rete"
)

// figure22 is the two-production example of the paper's Figure 2-2.
const figure22 = `
(literalize C1 attr1 attr2)
(literalize C2 attr1 attr2)
(literalize C3 attr1)
(literalize C4 attr1)
(p p1
  (C1 ^attr1 <x> ^attr2 12)
  (C2 ^attr1 15 ^attr2 <x>)
  - (C3 ^attr1 <x>)
-->
  (remove 2))
(p p2
  (C2 ^attr1 15 ^attr2 <y>)
  (C4 ^attr1 <y>)
-->
  (modify 1 ^attr1 12))
`

func main() {
	summary := flag.Bool("summary", false, "print network statistics only")
	pretty := flag.Bool("pretty", false, "pretty-print the parsed program instead of compiling")
	fig := flag.Bool("figure22", false, "compile the paper's Figure 2-2 example")
	flag.Parse()

	var src string
	switch {
	case *fig:
		src = figure22
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: ops5c [-summary|-pretty] file.ops5 | ops5c -figure22")
		os.Exit(2)
	}

	prog, err := ops5.Parse(src)
	if err != nil {
		fatal(err)
	}
	if *pretty {
		fmt.Print(prog.FormatProgram())
		return
	}
	net, err := rete.Compile(prog)
	if err != nil {
		fatal(err)
	}
	if *summary {
		s := net.Summarize()
		fmt.Printf("rules %d  alpha-chains %d (const tests %d)  two-input nodes %d (%d negated, %d eq tests, %d other tests)  terminals %d\n",
			s.Rules, s.Chains, s.ConstTests, s.Joins, s.NegatedJoins, s.EqTests, s.OtherTests, s.Terminals)
		return
	}
	net.Dump(os.Stdout)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ops5c:", err)
	os.Exit(1)
}
