// Command psmbench regenerates the paper's evaluation tables (4-1
// through 4-9) from this repository's matchers and the Multimax
// simulator, printing them in the paper's layout. See EXPERIMENTS.md for
// the recorded paper-vs-measured comparison.
//
// Usage:
//
//	psmbench [-scale 1.0] [-table all|4-1|...|seq|sim] [-host]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/parmatch"
	"repro/internal/tables"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-scale runs)")
	which := flag.String("table", "all", "table to print: all, seq (4-1..4-4), sim (4-5..4-9), or a single id like 4-6")
	host := flag.Bool("host", false, "also run the real goroutine matcher on this host and report wall-clock")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations (hardware scheduler, FIFO, pipelining, ...)")
	flag.Parse()

	specs := tables.Programs(*scale)
	want := func(id string) bool {
		switch *which {
		case "all":
			return true
		case "seq":
			return strings.HasPrefix(id, "4-") && id <= "4-4"
		case "sim":
			return id >= "4-5"
		default:
			return id == *which
		}
	}

	needSeq := want("4-1") || want("4-2") || want("4-3") || want("4-4")
	needSim := want("4-5") || want("4-6") || want("4-7") || want("4-8") || want("4-9")

	if needSeq {
		sr, err := tables.RunSeqAll(specs, want("4-4"))
		fatal(err)
		for _, t := range []struct {
			id string
			f  func(*tables.SeqResults) *tables.Table
		}{
			{"4-1", tables.Table41}, {"4-2", tables.Table42},
			{"4-3", tables.Table43}, {"4-4", tables.Table44},
		} {
			if want(t.id) {
				fmt.Println(t.f(sr).Render())
			}
		}
	}
	if needSim {
		fmt.Println("running Multimax simulation grid (deterministic)...")
		sim, err := tables.RunSimAll(specs)
		fatal(err)
		for _, t := range []struct {
			id string
			f  func(*tables.SimResults) *tables.Table
		}{
			{"4-5", tables.Table45}, {"4-6", tables.Table46},
			{"4-7", tables.Table47}, {"4-8", tables.Table48},
			{"4-9", tables.Table49},
		} {
			if want(t.id) {
				fmt.Println(t.f(sim).Render())
			}
		}
	}
	if *ablation {
		fmt.Println("running design-choice ablations (deterministic)...")
		rows, err := tables.RunAblations(specs)
		fatal(err)
		fmt.Println(tables.AblationTable(specs, rows).Render())
		t2, err := tables.ControlOverlapTable(specs)
		fatal(err)
		fmt.Println(t2.Render())
	}
	if *host {
		fmt.Printf("host check: real goroutine matcher on %d cores (GOMAXPROCS=%d)\n",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
		for _, spec := range specs {
			seq, err := tables.RunSeq(spec, "vs2")
			fatal(err)
			par, err := tables.RunPar(spec, parmatch.Config{
				Procs: runtime.GOMAXPROCS(0), Queues: 4, Scheme: parmatch.SchemeSimple,
			})
			fatal(err)
			fmt.Printf("  %-8s vs2 match %8.3fs   parallel(%d procs) match %8.3fs\n",
				spec.Name, seq.Match.Seconds(), runtime.GOMAXPROCS(0), par.MatchTime.Seconds())
		}
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "psmbench:", err)
		os.Exit(1)
	}
}
