// Command psmbench regenerates the paper's evaluation tables (4-1
// through 4-9) from this repository's matchers and the Multimax
// simulator, printing them in the paper's layout. See EXPERIMENTS.md for
// the recorded paper-vs-measured comparison.
//
// Usage:
//
//	psmbench [-scale 1.0] [-table all|4-1|...|seq|sim] [-host]
//	psmbench -match [-procs 1,2,4,8] [-matchout BENCH_match.json]
//	psmbench -durability [-durout BENCH_durability.json]
//	psmbench -act [-firebatch 1,4,8] [-procs 1,2,4,8] [-actout BENCH_act.json]
//	psmbench -join [-reorder both] [-procs 1,2,4] [-joinout BENCH_join.json]
//	psmbench -cluster [-backends 1,2,4] [-clusterout BENCH_cluster.json]
//	psmbench ... [-cpuprofile cpu.prof] [-memprofile mem.prof]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"repro/internal/parmatch"
	"repro/internal/tables"
)

func main() {
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper-scale runs)")
	which := flag.String("table", "all", "table to print: all, seq (4-1..4-4), sim (4-5..4-9), or a single id like 4-6")
	host := flag.Bool("host", false, "also run the real goroutine matcher on this host and report wall-clock")
	ablation := flag.Bool("ablation", false, "run the design-choice ablations (hardware scheduler, FIFO, pipelining, ...)")
	match := flag.Bool("match", false, "run the multicore match microbenchmarks instead of the paper tables")
	matchOut := flag.String("matchout", "", "write -match results as JSON to this file (e.g. BENCH_match.json)")
	durabilityBench := flag.Bool("durability", false, "run the session-spawn (fork vs cold) and crash-recovery benchmarks")
	durOut := flag.String("durout", "", "write -durability results as JSON to this file (e.g. BENCH_durability.json)")
	actBench := flag.Bool("act", false, "run the act-phase FireBatch x procs sweep (speculative multi-fire)")
	actOut := flag.String("actout", "", "write -act results as JSON to this file (e.g. BENCH_act.json)")
	joinBench := flag.Bool("join", false, "run the adversarial join kernels (cost-based reordering, match budget, unlinking)")
	joinOut := flag.String("joinout", "", "write -join results as JSON to this file (e.g. BENCH_join.json)")
	clusterBench := flag.Bool("cluster", false, "run the cluster fabric sweep (proxy over N in-process backends)")
	clusterOut := flag.String("clusterout", "", "write -cluster results as JSON to this file (e.g. BENCH_cluster.json)")
	backendCounts := flag.String("backends", "1,2,4", "comma-separated backend fleet sizes for -cluster")
	clusterClients := flag.Int("cluster-clients", 8, "concurrent clients driving the -cluster sweep")
	clusterBatches := flag.Int("cluster-batches", 30, "batches per client per -cluster cell")
	reorder := flag.String("reorder", "both", "join orders to sweep for -join: on (planned), off (source) or both")
	fireBatches := flag.String("firebatch", "1,4,8", "comma-separated act-batch sizes for -act")
	sweepItems := flag.Int("sweep-items", 2000, "items in the -act Sweep removal workload")
	durItems := flag.Int("dur-items", 2000, "warm base facts in the -durability template")
	durRules := flag.Int("dur-rules", 64, "generated rules in the -durability workload")
	procsFlag := flag.String("procs", "1,2,4,8", "comma-separated match-process counts for -match")
	reps := flag.Int("reps", 3, "repetitions per -match workload point (fastest is recorded)")
	bigmemPairs := flag.Int("bigmem-pairs", 20000, "bigmem layout comparison size in (acct, txn) pairs — 2x this many WMEs")
	bigmemLines := flag.Int("bigmem-lines", 1024, "starting hash-table lines for the bigmem layout comparison")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		fatal(err)
		fatal(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			fatal(err)
			runtime.GC()
			fatal(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	if *durabilityBench {
		runDurability(tables.DurabilityBenchOptions{
			Items: *durItems, Rules: *durRules, Reps: *reps,
		}, *durOut)
		return
	}
	if *actBench {
		procs, err := parseProcs(*procsFlag)
		fatal(err)
		batches, err := parseProcs(*fireBatches)
		fatal(err)
		runAct(tables.ActBenchOptions{
			Scale: *scale, FireBatches: batches, Procs: procs,
			Reps: *reps, SweepItems: *sweepItems,
		}, *actOut)
		return
	}
	if *clusterBench {
		counts, err := parseProcs(*backendCounts)
		fatal(err)
		runCluster(tables.ClusterBenchOptions{
			BackendCounts: counts, Clients: *clusterClients, Batches: *clusterBatches,
		}, *clusterOut)
		return
	}
	if *joinBench {
		procs, err := parseProcs(*procsFlag)
		fatal(err)
		var modes []string
		switch *reorder {
		case "on":
			modes = []string{"planned"}
		case "off":
			modes = []string{"source"}
		case "both":
		default:
			fatal(fmt.Errorf("bad -reorder %q (want on, off or both)", *reorder))
		}
		runJoin(tables.JoinBenchOptions{Procs: procs, Modes: modes}, *joinOut)
		return
	}
	if *match {
		procs, err := parseProcs(*procsFlag)
		fatal(err)
		runMatch(tables.MatchBenchOptions{
			Scale: *scale, Procs: procs, Reps: *reps,
			BigmemPairs: *bigmemPairs, BigmemLines: *bigmemLines,
		}, *matchOut)
		return
	}

	specs := tables.Programs(*scale)
	want := func(id string) bool {
		switch *which {
		case "all":
			return true
		case "seq":
			return strings.HasPrefix(id, "4-") && id <= "4-4"
		case "sim":
			return id >= "4-5"
		default:
			return id == *which
		}
	}

	needSeq := want("4-1") || want("4-2") || want("4-3") || want("4-4")
	needSim := want("4-5") || want("4-6") || want("4-7") || want("4-8") || want("4-9")

	if needSeq {
		sr, err := tables.RunSeqAll(specs, want("4-4"))
		fatal(err)
		for _, t := range []struct {
			id string
			f  func(*tables.SeqResults) *tables.Table
		}{
			{"4-1", tables.Table41}, {"4-2", tables.Table42},
			{"4-3", tables.Table43}, {"4-4", tables.Table44},
		} {
			if want(t.id) {
				fmt.Println(t.f(sr).Render())
			}
		}
	}
	if needSim {
		fmt.Println("running Multimax simulation grid (deterministic)...")
		sim, err := tables.RunSimAll(specs)
		fatal(err)
		for _, t := range []struct {
			id string
			f  func(*tables.SimResults) *tables.Table
		}{
			{"4-5", tables.Table45}, {"4-6", tables.Table46},
			{"4-7", tables.Table47}, {"4-8", tables.Table48},
			{"4-9", tables.Table49},
		} {
			if want(t.id) {
				fmt.Println(t.f(sim).Render())
			}
		}
	}
	if *ablation {
		fmt.Println("running design-choice ablations (deterministic)...")
		rows, err := tables.RunAblations(specs)
		fatal(err)
		fmt.Println(tables.AblationTable(specs, rows).Render())
		t2, err := tables.ControlOverlapTable(specs)
		fatal(err)
		fmt.Println(t2.Render())
	}
	if *host {
		fmt.Printf("host check: real goroutine matcher on %d cores (GOMAXPROCS=%d)\n",
			runtime.NumCPU(), runtime.GOMAXPROCS(0))
		for _, spec := range specs {
			seq, err := tables.RunSeq(spec, "vs2")
			fatal(err)
			par, err := tables.RunPar(spec, parmatch.Config{
				Procs: runtime.GOMAXPROCS(0), Queues: 4, Scheme: parmatch.SchemeSimple,
			})
			fatal(err)
			fmt.Printf("  %-8s vs2 match %8.3fs   parallel(%d procs) match %8.3fs\n",
				spec.Name, seq.Match.Seconds(), runtime.GOMAXPROCS(0), par.Res.MatchTime.Seconds())
		}
	}
}

// parseProcs parses the -procs list ("1,2,4,8").
func parseProcs(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -procs entry %q (want positive integers)", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-procs is empty")
	}
	return out, nil
}

// runMatch runs the multicore match sweep, prints a summary and
// optionally writes the BENCH_match.json payload. Rows whose proc count
// exceeds the host CPUs are marked "*": they timeshared real cores, so
// their wall-clock numbers measure oversubscription, not parallelism.
func runMatch(opt tables.MatchBenchOptions, outPath string) {
	fmt.Printf("match microbenchmarks: host CPUs %d, procs swept %v, scale %.2f, reps %d\n",
		runtime.NumCPU(), opt.Procs, opt.Scale, opt.Reps)
	rep, err := tables.RunMatchBench(opt)
	fatal(err)
	oversub := false
	mark := func(procs int, over bool) string {
		s := fmt.Sprintf("%d", procs)
		if over {
			s += "*"
			oversub = true
		}
		return s
	}
	fmt.Println("\nworkload        procs  match-s     acts/s      steals  overflows  requeues")
	for _, p := range rep.Workloads {
		fmt.Printf("%-15s %5s  %8.3f  %10.0f  %6d  %9d  %8d\n",
			p.Workload, mark(p.Procs, p.Oversubscribed), p.MatchSeconds, p.ActsPerSec,
			p.Contention.Steals, p.Contention.Overflows, p.Contention.Requeues)
	}
	fmt.Println("\nkernel  procs     ns/op  allocs/op  bytes/op  acts/op")
	for _, k := range rep.Kernels {
		label := mark(k.Procs, k.Oversubscribed)
		if k.Procs == 0 {
			label = "seq"
		}
		fmt.Printf("%-7s %5s  %8d  %9d  %8d  %7.0f\n",
			k.Kernel, label, k.NsPerOp, k.AllocsPerOp, k.BytesPerOp, k.ActsPerOp)
	}
	fmt.Println("\nbigmem  layout  pairs   seconds      acts/s  opp/pair    lines  resizes  maxdepth")
	for _, p := range rep.Bigmem {
		fmt.Printf("%-7s %-6s  %5d  %8.3f  %10.0f  %8.2f  %7d  %7d  %8d\n",
			"", p.Layout, p.Pairs, p.Seconds, p.ActsPerSec, p.OppPerPair,
			p.Memory.Lines, p.Memory.Resizes, p.Memory.MaxLineDepth)
	}
	if oversub {
		fmt.Println("\n* procs exceed host CPUs: point ran oversubscribed (timeshared cores)")
	}
	fmt.Println("\nconflict   live  shards  procs     ns/op  allocs/op  bytes/op  spins/acquire")
	for _, p := range rep.Conflict {
		fmt.Println(tables.FormatConflictPoint(p))
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		fatal(err)
		data = append(data, '\n')
		fatal(os.WriteFile(outPath, data, 0o644))
		fmt.Printf("\nwrote %s\n", outPath)
	}
}

// runDurability runs the fork-vs-cold spawn and crash-recovery
// benchmarks and optionally writes the BENCH_durability.json payload.
func runDurability(opt tables.DurabilityBenchOptions, outPath string) {
	rep, err := tables.RunDurabilityBench(opt)
	fatal(err)
	fmt.Printf("session spawn (%s, %d rules, %d base facts, median of %d):\n",
		rep.Backend, rep.Rules, rep.Items, rep.Reps)
	fmt.Printf("  cold  create+base+first-batch  %8d us\n", rep.ColdSpawnUs)
	fmt.Printf("  fork  fork+first-batch         %8d us   (%.1fx faster, %d WMEs shared)\n",
		rep.ForkSpawnUs, rep.ForkSpeedup, rep.ForkWMShared)
	fmt.Printf("crash recovery (%d churn batches, %d bytes of log):\n",
		rep.RecoveryBatches, rep.LogBytes)
	fmt.Printf("  replayed %d records in %d us  (%.0f records/s)\n",
		rep.RecoveryRecords, rep.RecoveryUs, rep.RecoveryRecPerSec)
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		fatal(err)
		data = append(data, '\n')
		fatal(os.WriteFile(outPath, data, 0o644))
		fmt.Printf("wrote %s\n", outPath)
	}
}

// runAct runs the act-phase FireBatch sweep, prints a summary and
// optionally writes the BENCH_act.json payload.
func runAct(opt tables.ActBenchOptions, outPath string) {
	fmt.Printf("act-phase sweep: host CPUs %d, fire batches %v, procs %v, scale %.2f, reps %d\n",
		runtime.NumCPU(), opt.FireBatches, opt.Procs, opt.Scale, opt.Reps)
	rep, err := tables.RunActBench(opt)
	fatal(err)
	oversub := false
	fmt.Println("\nworkload  batch  procs  cycles   seconds   cycles/s  speedup  grouped  rollback  groups")
	for _, p := range rep.Points {
		procs := fmt.Sprintf("%d", p.Procs)
		if p.Oversubscribed {
			procs += "*"
			oversub = true
		}
		speed := "     -"
		if p.Speedup > 0 {
			speed = fmt.Sprintf("%5.2fx", p.Speedup)
		}
		fmt.Printf("%-9s %5d  %5s  %6d  %8.3f  %9.0f  %7s  %6.0f%%  %7.0f%%  %6d\n",
			p.Workload, p.FireBatch, procs, p.Cycles, p.Seconds, p.CyclesPerSec,
			speed, p.GroupedShare*100, p.RollbackRatio*100, p.Act.GroupCommits)
	}
	if oversub {
		fmt.Println("\n* procs exceed host CPUs: point ran oversubscribed (timeshared cores)")
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		fatal(err)
		data = append(data, '\n')
		fatal(os.WriteFile(outPath, data, 0o644))
		fmt.Printf("\nwrote %s\n", outPath)
	}
}

// runJoin runs the adversarial join kernels, prints a summary and
// optionally writes the BENCH_join.json payload.
func runJoin(opt tables.JoinBenchOptions, outPath string) {
	fmt.Printf("join kernels: host CPUs %d\n", runtime.NumCPU())
	rep, err := tables.RunJoinBench(opt)
	fatal(err)
	oversub := false
	fmt.Println("\nkernel     mode     backend  procs  unlink  budget  cycles  firings  opp-examined  acts  skips  relinks  trips  quarantined")
	for _, p := range rep.Points {
		procs := "-"
		if p.Procs > 0 {
			procs = fmt.Sprintf("%d", p.Procs)
			if p.Oversubscribed {
				procs += "*"
				oversub = true
			}
		}
		budget := "-"
		if p.Budget > 0 {
			budget = fmt.Sprintf("%d", p.Budget)
		}
		fmt.Printf("%-10s %-8s %-8s %5s  %6v  %6s  %6d  %7d  %12d  %4d  %5d  %7d  %5d  %s\n",
			p.Kernel, p.Mode, p.Backend, procs, p.Unlink, budget, p.Cycles, p.Firings,
			p.OppExamined, p.Activations, p.UnlinkSkips, p.Relinks, p.BudgetTrips,
			strings.Join(p.Quarantined, ","))
	}
	if oversub {
		fmt.Println("\n* procs exceed host CPUs: point ran oversubscribed (timeshared cores)")
	}
	if rep.SkewGain > 0 {
		fmt.Printf("\nskew gain (source/planned opposite candidates): %.1fx\n", rep.SkewGain)
	}
	fmt.Printf("cross containment (unbudgeted/budgeted candidates): %.1fx\n", rep.CrossContainment)
	fmt.Printf("chain null-activation ratio (unlink/linked, gated): %.3f  (%d skips)\n",
		rep.ChainNullActRatio, rep.ChainUnlinkSkips)
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		fatal(err)
		data = append(data, '\n')
		fatal(os.WriteFile(outPath, data, 0o644))
		fmt.Printf("\nwrote %s\n", outPath)
	}
}

// runCluster runs the cluster fabric sweep, prints a summary and
// optionally writes the BENCH_cluster.json payload. Like the other
// wall-clock benches, throughput scaling on a host with fewer CPUs
// than backends measures timesharing, not the fabric; the report's
// oversubscribed flag records that and the smoke gate skips the
// scaling assertion there.
func runCluster(opt tables.ClusterBenchOptions, outPath string) {
	fmt.Printf("cluster fabric sweep: host CPUs %d, fleets %v, %d clients x %d batches\n",
		runtime.NumCPU(), opt.BackendCounts, opt.Clients, opt.Batches)
	rep, err := tables.RunClusterBench(opt)
	fatal(err)
	fmt.Println("\nworkload  backends  sessions  batches   cycles  batches/s   cycles/s  pushes  cache-hits  hit-rate")
	for _, r := range rep.Runs {
		fmt.Printf("%-9s %8d  %8d  %7d  %7d  %9.1f  %9.0f  %6d  %10d  %7.0f%%\n",
			r.Workload, r.Backends, r.Sessions, r.Batches, r.Cycles,
			r.BatchesPerSec, r.CyclesPerSec, r.ProgramPushes, r.ProgramCacheHits, r.CacheHitRate*100)
	}
	for wl, x := range rep.ScalingX2 {
		mark := ""
		if rep.Oversubscribed {
			mark = "*"
		}
		fmt.Printf("2-backend scaling (%s): %.2fx%s\n", wl, x, mark)
	}
	if rep.Oversubscribed {
		fmt.Println("* host has fewer CPUs than backends: scaling measures timesharing, not the fabric")
	}
	fmt.Printf("migration under load: %d migrations, p50 %d us, p99 %d us, max %d us\n",
		rep.Migration.Count, rep.Migration.P50Us, rep.Migration.P99Us, rep.Migration.MaxUs)
	for m, ok := range rep.MigrateDifferential {
		fmt.Printf("migrate differential (%s): ok=%v\n", m, ok)
	}
	if outPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		fatal(err)
		data = append(data, '\n')
		fatal(os.WriteFile(outPath, data, 0o644))
		fmt.Printf("wrote %s\n", outPath)
	}
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "psmbench:", err)
		os.Exit(1)
	}
}
