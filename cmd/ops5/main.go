// Command ops5 is the interactive OPS5 top level: load a program, then
// inspect and drive it with the classic commands (run, wm, pm, cs,
// matches, make, remove).
//
// Usage:
//
//	ops5 file.ops5
//	ops5 -program monkeys
package main

import (
	"flag"
	"fmt"
	"os"

	psme "repro"
	"repro/internal/repl"
)

func main() {
	program := flag.String("program", "", "load a built-in program (weaver, rubik, tourney, monkeys) instead of a file")
	scale := flag.Float64("scale", 1.0, "built-in program scale")
	flag.Parse()

	var src string
	switch {
	case *program != "":
		s, err := psme.BenchmarkProgram(*program, *scale)
		if err != nil {
			fatal(err)
		}
		src = s
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		src = string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: ops5 file.ops5  (or -program name)")
		os.Exit(2)
	}

	r, err := repl.New(src, os.Stdout)
	if err != nil {
		fatal(err)
	}
	if err := r.Run(os.Stdin); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ops5:", err)
	os.Exit(1)
}
