// Command ops5d is the OPS5 inference daemon: it hosts many concurrent
// engine sessions over shared read-only Rete networks and serves the
// HTTP/JSON API of internal/server.
//
// Usage:
//
//	ops5d [-addr :8726] [-max-sessions 256] [-workers 0]
//	      [-max-cycles 10000] [-timeout 5s] [-max-batch 4096]
//
// SIGINT/SIGTERM drain in-flight requests before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8726", "listen address")
	maxSessions := flag.Int("max-sessions", 256, "live session cap")
	workers := flag.Int("workers", 0, "request worker pool size (0 = 2x CPU)")
	maxCycles := flag.Int("max-cycles", 10000, "default recognize-act cycle budget per request (<0 = unlimited)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request run budget")
	maxBatch := flag.Int("max-batch", 4096, "max WM changes per request")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ops5d [flags]  (see -h)")
		os.Exit(2)
	}

	srv := server.New(server.Options{
		MaxSessions:      *maxSessions,
		Workers:          *workers,
		DefaultMaxCycles: *maxCycles,
		DefaultTimeout:   *timeout,
		MaxBatch:         *maxBatch,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("ops5d: %v — draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("ops5d: shutdown: %v", err)
		}
		srv.Close()
	}()

	log.Printf("ops5d: serving on %s", *addr)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ops5d: %v", err)
	}
	<-done
	log.Printf("ops5d: drained, bye")
}
