// Command ops5d is the OPS5 inference daemon: it hosts many concurrent
// engine sessions over shared read-only Rete networks and serves the
// HTTP/JSON API of internal/server.
//
// Usage:
//
//	ops5d [-addr :8726] [-max-sessions 256] [-workers 0]
//	      [-max-cycles 10000] [-timeout 5s] [-max-batch 4096]
//	      [-data-dir DIR] [-durability commit] [-snapshot-every 0]
//
// An address with port 0 (e.g. -addr 127.0.0.1:0) binds an ephemeral
// port; the daemon prints the bound address as its first stdout line
// ("listening on HOST:PORT") so harnesses — the cluster smoke test,
// psmbench -cluster — can spawn backends without picking ports.
//
// With -data-dir set the daemon is durable: every session appends its
// WM deltas to a per-session log under DIR, and a restart over the
// same directory recovers every session and template. SIGINT/SIGTERM
// drain in-flight requests and flush the delta logs before exiting.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8726", "listen address")
	maxSessions := flag.Int("max-sessions", 256, "live session cap")
	workers := flag.Int("workers", 0, "request worker pool size (0 = 2x CPU)")
	maxCycles := flag.Int("max-cycles", 10000, "default recognize-act cycle budget per request (<0 = unlimited)")
	timeout := flag.Duration("timeout", 5*time.Second, "default per-request run budget")
	maxBatch := flag.Int("max-batch", 4096, "max WM changes per request")
	drain := flag.Duration("drain", 30*time.Second, "shutdown drain budget")
	dataDir := flag.String("data-dir", "", "durability directory; empty = memory-only")
	durability := flag.String("durability", "", `log sync policy: "none", "commit" (default with -data-dir) or "always"`)
	snapEvery := flag.Int("snapshot-every", 0, "compact a session's delta log after this many batches (0 = only on demand)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: ops5d [flags]  (see -h)")
		os.Exit(2)
	}

	srv := server.New(server.Options{
		MaxSessions:      *maxSessions,
		Workers:          *workers,
		DefaultMaxCycles: *maxCycles,
		DefaultTimeout:   *timeout,
		MaxBatch:         *maxBatch,
		DataDir:          *dataDir,
		Durability:       *durability,
		SnapshotEvery:    *snapEvery,
	})
	if *dataDir != "" {
		recovered, err := srv.EnableDurability()
		if err != nil {
			log.Fatalf("ops5d: cannot open data dir %q: %v", *dataDir, err)
		}
		policy := *durability
		if policy == "" {
			policy = "commit"
		}
		log.Printf("ops5d: durable in %s (policy %s), recovered %d entries", *dataDir, policy, recovered)
	} else if *durability != "" || *snapEvery != 0 {
		log.Fatalf("ops5d: -durability/-snapshot-every need -data-dir")
	}
	// Listen before serving so a ":0" ephemeral port resolves to its
	// real address, printed on stdout for spawning harnesses to read.
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ops5d: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	fmt.Printf("listening on %s\n", bound)
	httpSrv := &http.Server{Handler: srv.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("ops5d: %v — draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("ops5d: shutdown: %v", err)
		}
		srv.Close()
	}()

	log.Printf("ops5d: serving on %s", bound)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ops5d: %v", err)
	}
	<-done
	log.Printf("ops5d: drained, bye")
}
