// Command ops5proxy is the cluster routing tier: a stateless proxy
// that consistent-hash-maps session IDs onto a fleet of ops5d
// backends (bounded-load placement), health-checks them, keeps the
// cluster-wide content-addressed program cache, and migrates live
// sessions between backends on request.
//
// Usage:
//
//	ops5proxy -backends http://h1:8726,http://h2:8726 [-addr :8800]
//	          [-vnodes 128] [-load-factor 1.25] [-health-every 2s]
//
// The proxy serves the same /sessions API as one ops5d, so clients
// point at it unchanged, plus POST /sessions/{id}/migrate and the
// cluster-level /programs, /metrics and /healthz views. Like ops5d,
// -addr with port 0 binds an ephemeral port and prints the bound
// address as the first stdout line.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8800", "listen address")
	backends := flag.String("backends", "", "comma-separated ops5d base URLs (required)")
	vnodes := flag.Int("vnodes", 128, "virtual nodes per backend on the hash ring")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load ceiling over the cluster mean")
	healthEvery := flag.Duration("health-every", 2*time.Second, "backend health-probe interval")
	drain := flag.Duration("drain", 10*time.Second, "shutdown drain budget")
	flag.Parse()
	if flag.NArg() != 0 || *backends == "" {
		fmt.Fprintln(os.Stderr, "usage: ops5proxy -backends URL[,URL...] [flags]  (see -h)")
		os.Exit(2)
	}
	var urls []string
	for _, u := range strings.Split(*backends, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	p, err := cluster.New(cluster.Options{
		Backends:    urls,
		VNodes:      *vnodes,
		LoadFactor:  *loadFactor,
		HealthEvery: *healthEvery,
	})
	if err != nil {
		log.Fatalf("ops5proxy: %v", err)
	}
	p.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("ops5proxy: listen %s: %v", *addr, err)
	}
	bound := ln.Addr().String()
	fmt.Printf("listening on %s\n", bound)
	httpSrv := &http.Server{Handler: p.Handler()}

	done := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		defer close(done)
		sig := <-sigs
		log.Printf("ops5proxy: %v — draining (budget %v)", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("ops5proxy: shutdown: %v", err)
		}
		p.Close()
	}()

	log.Printf("ops5proxy: routing %d backends on %s", len(urls), bound)
	if err := httpSrv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ops5proxy: %v", err)
	}
	<-done
	log.Printf("ops5proxy: drained, bye")
}
